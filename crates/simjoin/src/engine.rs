//! The proximity join engine: TC-processed intersection candidates via
//! Minkowski inflation, exact distance-interval refine.

use std::collections::HashMap;
use std::time::Instant;

use cij_core::{
    publish_engine_totals, ContinuousJoinEngine, EngineConfig, PairKey, PairStatus, ResultBuffer,
};
use cij_geom::{MovingRect, Time, DIMS};
use cij_join::{parallel_improved_join, JoinCounters};
use cij_obs::MetricsRegistry;
use cij_storage::{BufferPool, CacheSnapshot};
use cij_tpr::{ObjectId, TprResult, TprTree};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

/// Configuration of a [`ProximityJoinEngine`]: the shared TC-engine knobs
/// plus the distance threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityConfig {
    /// The shared engine knobs (`T_M`, tree, techniques, threads,
    /// metrics). `buckets_per_tm` is unused — candidates come from
    /// single TPR-trees, as in the TC engine.
    pub engine: EngineConfig,
    /// Distance threshold ε ≥ 0 (Euclidean). Pairs whose minimum
    /// distance within the valid window is ≤ ε are reported.
    pub epsilon: f64,
}

impl ProximityConfig {
    /// Bundles engine knobs with a threshold.
    ///
    /// # Panics
    ///
    /// If `epsilon` is negative or not finite.
    #[must_use]
    pub fn new(engine: EngineConfig, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        Self { engine, epsilon }
    }
}

/// Continuous ε-threshold similarity join over two sets of moving
/// rectangles.
///
/// Maintains every pair `(a, b)` whose minimum Euclidean distance within
/// the Theorem-1 valid window `[t_u, t_u + T_M]` is ≤ ε, with the exact
/// time sub-interval during which `dist(a, b) ≤ ε` holds.
///
/// # How it reuses the intersection join
///
/// The B-side index stores rectangles **inflated by ε per axis** (the
/// Minkowski sum with the L∞ ball of radius ε). `dist_L2 ≤ ε` implies
/// every per-axis gap is ≤ ε, which is exactly `a ∩ inflate(b, ε) ≠ ∅` —
/// so the stock TPR-tree intersection join over `(A, inflate(B, ε))`
/// returns a complete candidate superset, time-constrained precisely as
/// the TC engine's runs are. A refine pass then evaluates the exact
/// distance condition with
/// [`MovingRect::within_dist_sq_interval`](cij_geom::MovingRect::within_dist_sq_interval)
/// over the **full** maintenance window (not the candidate's overlap
/// interval — so the refined answer is a pure function of the pair and
/// the window, which is what makes the engine bit-identical to the
/// brute-force oracle).
///
/// Results land in the standard [`ResultBuffer`], so delta extraction,
/// stream subscriptions, WAL recovery and sharding compose unchanged.
pub struct ProximityJoinEngine {
    config: EngineConfig,
    eps: f64,
    eps_sq: f64,
    pool: BufferPool,
    /// A-side index over the original trajectories.
    tree_a: TprTree,
    /// B-side index over ε-inflated trajectories.
    tree_b: TprTree,
    /// Original (uninflated) registrations, the refine inputs.
    reg_a: HashMap<ObjectId, MovingRect>,
    reg_b: HashMap<ObjectId, MovingRect>,
    buffer: ResultBuffer,
    counters: JoinCounters,
    candidates: u64,
    refine_rejects: u64,
    obs: MetricsRegistry,
}

impl ProximityJoinEngine {
    /// Builds the engine and its two TPR-trees (B-side inflated).
    pub fn new(
        pool: BufferPool,
        config: ProximityConfig,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
    ) -> TprResult<Self> {
        let eps = config.epsilon;
        assert!(
            eps.is_finite() && eps >= 0.0,
            "epsilon must be finite and non-negative, got {eps}"
        );
        let obs = MetricsRegistry::enabled_if(config.engine.metrics);
        pool.stats().register_in(&obs, "storage.pool");
        let mut tree_a = TprTree::new(pool.clone(), config.engine.tree);
        let mut tree_b = TprTree::new(pool.clone(), config.engine.tree);
        let mut reg_a = HashMap::with_capacity(set_a.len());
        let mut reg_b = HashMap::with_capacity(set_b.len());
        for o in set_a {
            tree_a.insert(o.id, o.mbr, now)?;
            reg_a.insert(o.id, o.mbr);
        }
        for o in set_b {
            tree_b.insert(o.id, inflate_padded(&o.mbr, eps), now)?;
            reg_b.insert(o.id, o.mbr);
        }
        Ok(Self {
            config: config.engine,
            eps,
            eps_sq: eps * eps,
            pool,
            tree_a,
            tree_b,
            reg_a,
            reg_b,
            buffer: ResultBuffer::new(),
            counters: JoinCounters::new(),
            candidates: 0,
            refine_rejects: 0,
            obs,
        })
    }

    /// The configured threshold ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Candidate pairs produced by the inflated intersection join so far.
    #[must_use]
    pub fn candidates(&self) -> u64 {
        self.candidates
    }

    /// Candidates the exact-distance refine pass discarded.
    #[must_use]
    pub fn refine_rejects(&self) -> u64 {
        self.refine_rejects
    }

    /// Refines candidate `(a, b)` over the full window `[now, now + T_M]`
    /// and records the surviving sub-interval. The window — not the
    /// candidate's overlap interval — is deliberate: it makes the stored
    /// interval a pure function of `(a, b, now)`, identical to what the
    /// brute-force oracle computes.
    fn refine(&mut self, a: ObjectId, b: ObjectId, now: Time) {
        self.candidates += 1;
        let iv = {
            let ra = self.reg_a.get(&a).expect("unregistered A-side candidate");
            let rb = self.reg_b.get(&b).expect("unregistered B-side candidate");
            ra.within_dist_sq_interval(rb, self.eps_sq, now, now + self.config.t_m)
        };
        match iv {
            Some(iv) => self.buffer.add(a, b, iv),
            None => self.refine_rejects += 1,
        }
    }

    /// Runs `refine` over a candidate batch, recording the batch's wall
    /// time into the `simjoin.refine_ns` histogram when metrics are on.
    fn refine_batch(&mut self, cands: impl IntoIterator<Item = PairKey>, now: Time) {
        let timer = self.obs.is_enabled().then(Instant::now);
        for (a, b) in cands {
            self.refine(a, b, now);
        }
        if let Some(t0) = timer {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.obs.histogram("simjoin.refine_ns").record(ns);
        }
    }
}

/// ε-inflation with a small outward rounding pad.
///
/// The candidate filter compares floats that each went through a
/// subtraction or addition (`lo - ε`, `hi + ε`) and, in the sweep, a
/// position advance — every step good to half an ulp. Plain `inflate(ε)`
/// can therefore round the inflated face *inward* past a pair whose
/// refined distance is exactly ε, silently dropping a boundary tie the
/// exact refine would accept. Padding each face outward by a few ulps of
/// its own magnitude restores the superset guarantee; the refine pass is
/// exact, so the pad costs only a handful of extra rejected candidates
/// and never changes the answer. Deterministic, so the delete path
/// reproduces the inserted rectangle bit-for-bit.
fn inflate_padded(r: &MovingRect, eps: f64) -> MovingRect {
    let mut out = r.inflate(eps);
    for d in 0..DIMS {
        let pad = f64::EPSILON * 4.0 * (out.lo[d].abs().max(out.hi[d].abs()) + eps + 1.0);
        out.lo[d] -= pad;
        out.hi[d] += pad;
    }
    out
}

/// Orients an (updated object, partner) pair as (A-object, B-object).
fn orient(update_side: SetTag, updated: ObjectId, partner: ObjectId) -> PairKey {
    match update_side {
        SetTag::A => (updated, partner),
        SetTag::B => (partner, updated),
    }
}

fn merge_cache_stats(a: Option<CacheSnapshot>, b: Option<CacheSnapshot>) -> Option<CacheSnapshot> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.merged(&y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl ContinuousJoinEngine for ProximityJoinEngine {
    fn name(&self) -> &'static str {
        "Proximity-Join"
    }

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        // Candidate phase: the stock time-constrained intersection join,
        // Theorem-1 window, over (A, inflate(B, ε)).
        let window_end = now + self.config.t_m;
        let (pairs, counters) = parallel_improved_join(
            &self.tree_a,
            &self.tree_b,
            now,
            window_end,
            self.config.techniques,
            self.config.threads,
        )?;
        self.counters = self.counters.merged(counters);
        self.refine_batch(pairs.into_iter().map(|p| (p.a, p.b)), now);
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        let window_end = now + self.config.t_m;
        // Re-register in the index (B-side rectangles are stored
        // inflated, and re-inflating the old registration reproduces the
        // stored rectangle bit-for-bit — same float op, same inputs).
        let cands = match update.set {
            SetTag::A => {
                self.tree_a
                    .update(update.id, &update.old_mbr, update.new_mbr, now)?;
                self.reg_a.insert(update.id, update.new_mbr);
                self.tree_b
                    .intersect_window(&update.new_mbr, now, window_end)?
            }
            SetTag::B => {
                let old_inflated = inflate_padded(&update.old_mbr, self.eps);
                let new_inflated = inflate_padded(&update.new_mbr, self.eps);
                self.tree_b
                    .update(update.id, &old_inflated, new_inflated, now)?;
                self.reg_b.insert(update.id, update.new_mbr);
                self.tree_a
                    .intersect_window(&new_inflated, now, window_end)?
            }
        };
        self.buffer.remove_object(update.id);
        let set = update.set;
        let id = update.id;
        self.refine_batch(
            cands
                .into_iter()
                .map(|(partner, _)| orient(set, id, partner)),
            now,
        );
        Ok(())
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        let window_end = now + self.config.t_m;
        let cands = match set {
            SetTag::A => {
                self.tree_a.insert(id, mbr, now)?;
                self.reg_a.insert(id, mbr);
                self.tree_b.intersect_window(&mbr, now, window_end)?
            }
            SetTag::B => {
                let inflated = inflate_padded(&mbr, self.eps);
                self.tree_b.insert(id, inflated, now)?;
                self.reg_b.insert(id, mbr);
                self.tree_a.intersect_window(&inflated, now, window_end)?
            }
        };
        self.refine_batch(
            cands
                .into_iter()
                .map(|(partner, _)| orient(set, id, partner)),
            now,
        );
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        _last_update: Time,
        now: Time,
    ) -> TprResult<()> {
        match set {
            SetTag::A => {
                self.tree_a.delete(id, old_mbr, now)?;
                self.reg_a.remove(&id);
            }
            SetTag::B => {
                self.tree_b
                    .delete(id, &inflate_padded(old_mbr, self.eps), now)?;
                self.reg_b.remove(&id);
            }
        }
        self.buffer.remove_object(id);
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        self.buffer.prune_before(now);
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        self.buffer.active_at(t)
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn enable_delta_tracking(&mut self) {
        self.buffer.enable_change_tracking();
    }

    fn take_result_changes(&mut self) -> Option<Vec<PairKey>> {
        self.buffer.take_changes()
    }

    fn pair_status_at(&self, pair: PairKey, t: Time) -> PairStatus {
        self.buffer.status_at(pair.0, pair.1, t)
    }

    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        merge_cache_stats(
            self.tree_a.node_cache_stats(),
            self.tree_b.node_cache_stats(),
        )
    }

    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        Some(
            self.tree_a
                .page_format_stats()
                .merged(&self.tree_b.page_format_stats()),
        )
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        publish_engine_totals(
            &self.obs,
            self.counters,
            self.node_cache_snapshot(),
            self.page_format_snapshot(),
        );
        if self.obs.is_enabled() {
            self.obs
                .counter("simjoin.candidates")
                .store(self.candidates);
            self.obs
                .counter("simjoin.refine_rejects")
                .store(self.refine_rejects);
        }
    }
}
