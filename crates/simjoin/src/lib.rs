//! # cij-simjoin — continuous ε-threshold similarity join
//!
//! A second query class on the TC-processing stack: instead of "which
//! pairs *intersect*", maintain every pair `(a, b)` whose minimum
//! Euclidean distance within the valid time window is **≤ ε**, together
//! with the exact sub-interval during which the threshold holds.
//!
//! The engine is two existing mechanisms composed, not a new join
//! algorithm:
//!
//! 1. **Candidates — Minkowski inflation.** The B-side TPR-tree indexes
//!    rectangles inflated by ε per axis. `dist ≤ ε` implies every
//!    per-axis gap is ≤ ε, i.e. `a` intersects `inflate(b, ε)` — so the
//!    stock time-constrained intersection join over `(A, inflate(B, ε))`
//!    yields a complete candidate superset, Theorem-1/2 windows and all.
//! 2. **Refine — exact distance intervals.** Each candidate is passed to
//!    [`cij_geom::MovingRect::within_dist_sq_interval`], which solves the
//!    piecewise-quadratic `dist²(t) ≤ ε²` in closed form over the full
//!    maintenance window.
//!
//! Because refined intervals land in the standard `cij-core`
//! `ResultBuffer`, everything downstream — delta extraction, stream
//! subscriptions, WAL recovery, shard routing, metrics — works on the
//! proximity join without modification; see
//! [`proximity_stream_factory`] and [`proximity_shard_factory`].
//!
//! Correctness is pinned by [`BruteProximityEngine`], an exhaustive
//! oracle that calls the *same* refine primitive over the *same* window,
//! making engine-vs-oracle comparisons bit-identical (the tests use
//! `assert_eq!` on pair sets, intervals and `PairStatus`, no tolerance).

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod brute;
mod engine;
mod factory;

pub use brute::BruteProximityEngine;
pub use engine::{ProximityConfig, ProximityJoinEngine};
pub use factory::{proximity_shard_factory, proximity_stream_factory};
