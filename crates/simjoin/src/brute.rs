//! Brute-force proximity-join oracle.
//!
//! No index, no candidates: every A×B pair is refined with the *same*
//! primitive over the *same* window the real engine uses, so the two
//! answers are bit-identical floats — the differential suites assert
//! exact equality, not tolerance bands.

use std::collections::HashMap;
use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, PairKey, PairStatus, ResultBuffer};
use cij_geom::{MovingRect, Time};
use cij_join::JoinCounters;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprResult};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

use crate::ProximityConfig;

/// O(|A|·|B|) reference implementation of the proximity join.
///
/// Implements the full [`ContinuousJoinEngine`] protocol (including
/// routed insert/remove and delta tracking) so it can stand in for
/// [`ProximityJoinEngine`](crate::ProximityJoinEngine) anywhere — behind
/// the stream service, under the shard router — while computing the
/// answer by exhaustive refinement.
pub struct BruteProximityEngine {
    t_m: Time,
    eps_sq: f64,
    /// Unused placeholder so `pool()` has something to return; the
    /// oracle performs no page I/O.
    pool: BufferPool,
    reg_a: HashMap<ObjectId, MovingRect>,
    reg_b: HashMap<ObjectId, MovingRect>,
    buffer: ResultBuffer,
    counters: JoinCounters,
}

impl BruteProximityEngine {
    /// Builds the oracle over the same inputs the real engine takes.
    /// `config.engine` contributes only `T_M`; trees, techniques and
    /// threads are irrelevant to exhaustive refinement.
    #[must_use]
    pub fn new(config: ProximityConfig, set_a: &[MovingObject], set_b: &[MovingObject]) -> Self {
        let eps = config.epsilon;
        assert!(
            eps.is_finite() && eps >= 0.0,
            "epsilon must be finite and non-negative, got {eps}"
        );
        Self {
            t_m: config.engine.t_m,
            eps_sq: eps * eps,
            pool: BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default()),
            reg_a: set_a.iter().map(|o| (o.id, o.mbr)).collect(),
            reg_b: set_b.iter().map(|o| (o.id, o.mbr)).collect(),
            buffer: ResultBuffer::new(),
            counters: JoinCounters::new(),
        }
    }

    /// Refines one pair over `[now, now + T_M]` — byte-for-byte the call
    /// the real engine makes for its candidates.
    fn refine(&mut self, a: ObjectId, b: ObjectId, now: Time) {
        self.counters.entry_comparisons += 1;
        let iv = {
            let ra = &self.reg_a[&a];
            let rb = &self.reg_b[&b];
            ra.within_dist_sq_interval(rb, self.eps_sq, now, now + self.t_m)
        };
        if let Some(iv) = iv {
            self.counters.pairs_emitted += 1;
            self.buffer.add(a, b, iv);
        }
    }

    /// Refines `id` (on side `set`) against every registered partner.
    fn refine_against_all(&mut self, set: SetTag, id: ObjectId, now: Time) {
        let partners: Vec<ObjectId> = match set {
            SetTag::A => self.reg_b.keys().copied().collect(),
            SetTag::B => self.reg_a.keys().copied().collect(),
        };
        for p in partners {
            match set {
                SetTag::A => self.refine(id, p, now),
                SetTag::B => self.refine(p, id, now),
            }
        }
    }
}

impl ContinuousJoinEngine for BruteProximityEngine {
    fn name(&self) -> &'static str {
        "Brute-Proximity"
    }

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        let ids: Vec<ObjectId> = self.reg_a.keys().copied().collect();
        for a in ids {
            let partners: Vec<ObjectId> = self.reg_b.keys().copied().collect();
            for b in partners {
                self.refine(a, b, now);
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        match update.set {
            SetTag::A => self.reg_a.insert(update.id, update.new_mbr),
            SetTag::B => self.reg_b.insert(update.id, update.new_mbr),
        };
        self.buffer.remove_object(update.id);
        self.refine_against_all(update.set, update.id, now);
        Ok(())
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        match set {
            SetTag::A => self.reg_a.insert(id, mbr),
            SetTag::B => self.reg_b.insert(id, mbr),
        };
        self.refine_against_all(set, id, now);
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        _old_mbr: &MovingRect,
        _last_update: Time,
        _now: Time,
    ) -> TprResult<()> {
        match set {
            SetTag::A => self.reg_a.remove(&id),
            SetTag::B => self.reg_b.remove(&id),
        };
        self.buffer.remove_object(id);
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        self.buffer.prune_before(now);
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        self.buffer.active_at(t)
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn enable_delta_tracking(&mut self) {
        self.buffer.enable_change_tracking();
    }

    fn take_result_changes(&mut self) -> Option<Vec<PairKey>> {
        self.buffer.take_changes()
    }

    fn pair_status_at(&self, pair: PairKey, t: Time) -> PairStatus {
        self.buffer.status_at(pair.0, pair.1, t)
    }
}
