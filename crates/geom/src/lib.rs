//! # cij-geom — time-parameterized geometry kernel
//!
//! The geometric substrate for *Continuous Intersection Joins Over Moving
//! Objects* (Zhang et al., ICDE 2008). Moving objects are modelled the way
//! the paper (and the TPR-tree literature it builds on) models them: a
//! minimum bounding rectangle (MBR) captured at a reference time plus a
//! velocity bounding rectangle (VBR), so every bound of the rectangle is a
//! linear function of time.
//!
//! The kernel provides:
//!
//! * [`TimeInterval`] — closed time intervals with an `∞` upper end, the
//!   currency of every join algorithm in the paper (`intersect(e_A, e_B,
//!   t_s, t_e)` returns one of these).
//! * [`Rect`] — plain axis-aligned rectangles (a moving rectangle frozen at
//!   one instant).
//! * [`MovingRect`] — the core type: evaluation at a timestamp, bounding
//!   unions, the time-interval intersection test of the paper's
//!   `intersect()` primitive, and the integral metrics (area, margin,
//!   overlap integrals over a horizon) that drive TPR/TPR*-tree insertion
//!   heuristics.
//!
//! Everything is `f64`, two-dimensional (the paper presents 2-D and notes
//! the techniques generalize), and allocation-free on the hot paths.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod distance;
pub mod interval;
pub mod moving;
pub mod rect;

pub use interval::{TimeInterval, INFINITE_TIME};
pub use moving::MovingRect;
pub use rect::Rect;

/// Timestamps and durations. The paper's driver advances integer ticks but
/// all geometry is continuous, so we keep `f64` throughout.
pub type Time = f64;

/// Number of spatial dimensions. The paper focuses on 2-D; the code is
/// written against this constant so a 3-D port is a one-line change plus
/// recompilation.
pub const DIMS: usize = 2;
