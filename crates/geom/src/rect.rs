//! Static axis-aligned rectangles — a [`MovingRect`](crate::MovingRect)
//! frozen at one instant.

use crate::DIMS;

/// An axis-aligned rectangle `[lo, hi]` in 2-D space.
///
/// Degenerate rectangles (points, segments) are legal: `lo[d] == hi[d]`.
/// An "empty" rectangle is not representable; constructors enforce
/// `lo[d] <= hi[d]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower bound per dimension.
    pub lo: [f64; DIMS],
    /// Upper bound per dimension.
    pub hi: [f64; DIMS],
}

impl Rect {
    /// Creates a rectangle from bounds.
    ///
    /// # Panics
    /// Panics in debug builds when any `lo[d] > hi[d]`.
    #[inline]
    pub fn new(lo: [f64; DIMS], hi: [f64; DIMS]) -> Self {
        debug_assert!(
            (0..DIMS).all(|d| lo[d] <= hi[d]),
            "inverted rect: lo={lo:?} hi={hi:?}"
        );
        Self { lo, hi }
    }

    /// A square of side `side` centered at `center`.
    #[inline]
    pub fn square(center: [f64; DIMS], side: f64) -> Self {
        let h = side / 2.0;
        Self::new(
            [center[0] - h, center[1] - h],
            [center[0] + h, center[1] + h],
        )
    }

    /// A degenerate point rectangle.
    #[inline]
    pub fn point(p: [f64; DIMS]) -> Self {
        Self { lo: p, hi: p }
    }

    /// Side length in dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi[d] - self.lo[d]
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> [f64; DIMS] {
        [
            (self.lo[0] + self.hi[0]) / 2.0,
            (self.lo[1] + self.hi[1]) / 2.0,
        ]
    }

    /// Area (product of extents).
    #[inline]
    pub fn area(&self) -> f64 {
        self.extent(0) * self.extent(1)
    }

    /// Half-perimeter (sum of extents) — the R*-tree "margin" metric.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.extent(0) + self.extent(1)
    }

    /// Whether the two rectangles share at least a boundary point.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..DIMS).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// The intersection rectangle, or `None` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let mut lo = [0.0; DIMS];
        let mut hi = [0.0; DIMS];
        for d in 0..DIMS {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if lo[d] > hi[d] {
                return None;
            }
        }
        Some(Self { lo, hi })
    }

    /// Overlap area with `other` (zero when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Self) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Smallest rectangle containing both.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut lo = [0.0; DIMS];
        let mut hi = [0.0; DIMS];
        for d in 0..DIMS {
            lo[d] = self.lo[d].min(other.lo[d]);
            hi[d] = self.hi[d].max(other.hi[d]);
        }
        Self { lo, hi }
    }

    /// Grows `self` to contain `other`.
    #[inline]
    pub fn union_assign(&mut self, other: &Self) {
        for d in 0..DIMS {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Whether `other` lies entirely inside `self` (boundaries count).
    #[inline]
    pub fn contains_rect(&self, other: &Self) -> bool {
        (0..DIMS).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Like [`contains_rect`](Self::contains_rect) but tolerates a
    /// magnitude-scaled slack of `eps` per bound.
    ///
    /// Rebasing a moving rectangle to a new reference time accumulates a
    /// few ulps of rounding error (`v·t_ref + v·(t − t_ref) ≠ v·t` in
    /// floating point), so containment invariants between a bounding
    /// union and its members hold only up to that slack. Invariant checks
    /// and tree validators use this predicate.
    #[inline]
    pub fn contains_rect_eps(&self, other: &Self, eps: f64) -> bool {
        (0..DIMS).all(|d| {
            let slack = eps * (1.0 + self.lo[d].abs().max(self.hi[d].abs()));
            self.lo[d] - slack <= other.lo[d] && other.hi[d] <= self.hi[d] + slack
        })
    }

    /// Whether point `p` lies inside `self` (boundaries count).
    #[inline]
    pub fn contains_point(&self, p: [f64; DIMS]) -> bool {
        (0..DIMS).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// Squared minimum distance from point `p` to this rectangle
    /// (0 when `p` is inside) — the `MINDIST` of kNN tree searches.
    #[inline]
    pub fn min_dist_sq(&self, p: [f64; DIMS]) -> f64 {
        let mut acc = 0.0;
        for ((&coord, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            let gap = if coord < lo {
                lo - coord
            } else if coord > hi {
                coord - hi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new([x0, y0], [x1, y1])
    }

    #[test]
    fn basic_metrics() {
        let a = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), [2.0, 1.0]);
        assert_eq!(a.extent(0), 4.0);
        assert_eq!(a.extent(1), 2.0);
    }

    #[test]
    fn square_constructor() {
        let s = Rect::square([10.0, 20.0], 2.0);
        assert_eq!(s, r(9.0, 19.0, 11.0, 21.0));
    }

    #[test]
    fn point_is_degenerate() {
        let p = Rect::point([1.0, 2.0]);
        assert_eq!(p.area(), 0.0);
        assert!(p.contains_point([1.0, 2.0]));
        assert!(p.intersects(&p));
    }

    #[test]
    fn intersect_and_overlap() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b).unwrap(), r(1.0, 1.0, 2.0, 2.0));
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn touching_edges_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn union_contains_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(3.0, -1.0, 4.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -1.0, 4.0, 1.0));
        let mut m = a;
        m.union_assign(&b);
        assert_eq!(m, u);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point([0.0, 10.0]));
        assert!(!outer.contains_point([-0.1, 5.0]));
    }
}

#[cfg(test)]
mod mindist_tests {
    use super::*;

    #[test]
    fn min_dist_inside_is_zero() {
        let r = Rect::new([0.0, 0.0], [10.0, 10.0]);
        assert_eq!(r.min_dist_sq([5.0, 5.0]), 0.0);
        assert_eq!(r.min_dist_sq([0.0, 10.0]), 0.0);
    }

    #[test]
    fn min_dist_axis_and_corner() {
        let r = Rect::new([0.0, 0.0], [10.0, 10.0]);
        // Straight out in x.
        assert_eq!(r.min_dist_sq([13.0, 5.0]), 9.0);
        // Corner: 3-4-5 triangle.
        assert_eq!(r.min_dist_sq([13.0, 14.0]), 25.0);
        // Below in y.
        assert_eq!(r.min_dist_sq([5.0, -2.0]), 4.0);
    }
}
