//! Distance between moving rectangles (and points) over time intervals.
//!
//! The squared distance between two moving rectangles is, per dimension,
//! the square of a *gap* function `max(0, loA−hiB, loB−hiA)(t)` — the
//! maximum of two linear functions and zero, hence piecewise linear,
//! non-negative and convex. Summing squared convex non-negative
//! functions keeps convexity, so `dist²(t)` is a **convex piecewise
//! quadratic**: its minimum over a window is found exactly by splitting
//! at the (at most four) gap breakpoints and minimizing each quadratic
//! piece in closed form, and its maximum sits at a window endpoint.
//!
//! These are the pruning bounds of interval nearest-neighbor search
//! (§V's "kNN candidates for a time interval" discussion): a subtree
//! whose minimal distance over the window exceeds some candidate's
//! *maximal* distance can never supply a nearest neighbor.

use crate::{MovingRect, Time, TimeInterval, DIMS};

/// A linear function `b + v·t`.
#[derive(Debug, Clone, Copy)]
struct Linear {
    b: f64,
    v: f64,
}

impl Linear {
    #[inline]
    fn at(self, t: f64) -> f64 {
        self.b + self.v * t
    }
}

/// The two candidate gap lines of one dimension (`loA−hiB`, `loB−hiA`);
/// the realized gap is `max(0, l1, l2)`.
fn gap_lines(a: &MovingRect, b: &MovingRect, d: usize) -> (Linear, Linear) {
    let lo_a = Linear {
        b: a.lo[d] - a.vlo[d] * a.t_ref,
        v: a.vlo[d],
    };
    let hi_a = Linear {
        b: a.hi[d] - a.vhi[d] * a.t_ref,
        v: a.vhi[d],
    };
    let lo_b = Linear {
        b: b.lo[d] - b.vlo[d] * b.t_ref,
        v: b.vlo[d],
    };
    let hi_b = Linear {
        b: b.hi[d] - b.vhi[d] * b.t_ref,
        v: b.vhi[d],
    };
    (
        Linear {
            b: lo_a.b - hi_b.b,
            v: lo_a.v - hi_b.v,
        },
        Linear {
            b: lo_b.b - hi_a.b,
            v: lo_b.v - hi_a.v,
        },
    )
}

#[inline]
fn gap_at(l1: Linear, l2: Linear, t: f64) -> f64 {
    l1.at(t).max(l2.at(t)).max(0.0)
}

/// Collects the time points in `(t0, t1)` where any gap's active piece
/// may change: pairwise crossings of `{l1, l2, 0}` per dimension.
fn breakpoints(a: &MovingRect, b: &MovingRect, t0: Time, t1: Time, out: &mut Vec<f64>) {
    for d in 0..DIMS {
        let (l1, l2) = gap_lines(a, b, d);
        let mut push_root = |num: f64, den: f64| {
            if den != 0.0 {
                let t = num / den;
                if t > t0 && t < t1 && t.is_finite() {
                    out.push(t);
                }
            }
        };
        push_root(l2.b - l1.b, l1.v - l2.v); // l1 = l2
        push_root(-l1.b, l1.v); // l1 = 0
        push_root(-l2.b, l2.v); // l2 = 0
    }
}

impl MovingRect {
    /// Squared distance between the two rectangles at instant `t`
    /// (0 when intersecting).
    #[must_use]
    pub fn dist_sq_at(&self, other: &Self, t: Time) -> f64 {
        (0..DIMS)
            .map(|d| {
                let (l1, l2) = gap_lines(self, other, d);
                let g = gap_at(l1, l2, t);
                g * g
            })
            .sum()
    }

    /// Exact minimum of the squared distance over `[t0, t1]`.
    ///
    /// Returns `(min_dist_sq, t_min)` with one witness time attaining
    /// the minimum. Zero as soon as the rectangles touch anywhere in the
    /// window.
    #[must_use]
    pub fn min_dist_sq_interval(&self, other: &Self, t0: Time, t1: Time) -> (f64, Time) {
        debug_assert!(t1 >= t0);
        // Fast path: if they intersect in the window, distance is 0.
        if let Some(iv) = self.intersect_interval(other, t0, t1) {
            return (0.0, iv.start);
        }
        let mut cuts = Vec::with_capacity(3 * DIMS + 2);
        cuts.push(t0);
        breakpoints(self, other, t0, t1, &mut cuts);
        cuts.push(t1);
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));

        let lines: Vec<(Linear, Linear)> = (0..DIMS).map(|d| gap_lines(self, other, d)).collect();

        let mut best = f64::INFINITY;
        let mut best_t = t0;
        let consider = |t: f64, best: &mut f64, best_t: &mut f64| {
            let v: f64 = lines
                .iter()
                .map(|&(l1, l2)| {
                    let g = gap_at(l1, l2, t);
                    g * g
                })
                .sum();
            if v < *best {
                *best = v;
                *best_t = t;
            }
        };
        for w in cuts.windows(2) {
            let (s, e) = (w[0], w[1]);
            consider(s, &mut best, &mut best_t);
            consider(e, &mut best, &mut best_t);
            if e <= s {
                continue;
            }
            // Within (s, e) every gap is a single linear piece
            // `g_d(t) = c_d + m_d·t` (possibly the zero piece); the sum
            // of squares is a quadratic with vertex at
            // t* = −Σ c_d·m_d / Σ m_d².
            let mid = (s + e) / 2.0;
            let mut sum_cm = 0.0;
            let mut sum_mm = 0.0;
            for &(l1, l2) in &lines {
                // Identify the active piece at the segment midpoint.
                let (g1, g2) = (l1.at(mid), l2.at(mid));
                let active = if g1 <= 0.0 && g2 <= 0.0 {
                    None
                } else if g1 >= g2 {
                    Some(l1)
                } else {
                    Some(l2)
                };
                if let Some(l) = active {
                    sum_cm += l.b * l.v;
                    sum_mm += l.v * l.v;
                }
            }
            if sum_mm > 0.0 {
                let t_star = -sum_cm / sum_mm;
                if t_star > s && t_star < e {
                    consider(t_star, &mut best, &mut best_t);
                }
            }
        }
        (best, best_t)
    }

    /// Exact maximum of the squared distance over `[t0, t1]`.
    ///
    /// `dist²(t)` is convex, so the maximum sits at an endpoint.
    #[must_use]
    pub fn max_dist_sq_interval(&self, other: &Self, t0: Time, t1: Time) -> f64 {
        debug_assert!(t1 >= t0);
        self.dist_sq_at(other, t0).max(self.dist_sq_at(other, t1))
    }

    /// The quadratic `[a, b, c]` (`dist²(t) = a·t² + b·t + c`) valid on
    /// the smooth piece of the squared-distance function containing
    /// `t_probe`.
    ///
    /// The piece boundaries are the gap breakpoints (see
    /// [`min_dist_sq_interval`](Self::min_dist_sq_interval)); callers
    /// that have already split time at those breakpoints probe at a
    /// segment midpoint to get the exact quadratic for the whole
    /// segment. Used by the interval-NN envelope computation.
    #[must_use]
    pub fn dist_sq_quad_piece(&self, other: &Self, t_probe: Time) -> [f64; 3] {
        let mut qa = 0.0;
        let mut qb = 0.0;
        let mut qc = 0.0;
        for d in 0..DIMS {
            let (l1, l2) = gap_lines(self, other, d);
            let (g1, g2) = (l1.at(t_probe), l2.at(t_probe));
            let active = if g1 <= 0.0 && g2 <= 0.0 {
                None
            } else if g1 >= g2 {
                Some(l1)
            } else {
                Some(l2)
            };
            if let Some(l) = active {
                // (b + v·t)² = v²·t² + 2bv·t + b²
                qa += l.v * l.v;
                qb += 2.0 * l.b * l.v;
                qc += l.b * l.b;
            }
        }
        [qa, qb, qc]
    }

    /// Every time in `(t0, t1)` where the squared-distance function's
    /// smooth piece may change, appended to `out` (unsorted).
    pub fn dist_sq_breakpoints(&self, other: &Self, t0: Time, t1: Time, out: &mut Vec<f64>) {
        breakpoints(self, other, t0, t1, out);
    }

    /// The sub-interval of `[t0, t1]` during which `dist²(t) ≤ eps_sq`,
    /// or `None` when the rectangles never come that close.
    ///
    /// `dist²(t)` is convex piecewise quadratic (see the module docs),
    /// so its `≤ eps_sq` sub-level set intersected with the window is a
    /// *single* closed interval: we split the window at the gap
    /// breakpoints, solve each quadratic piece's inequality in closed
    /// form, and return the earliest entry / latest exit. A tangency
    /// (minimum distance exactly `√eps_sq`) yields the degenerate
    /// single-instant interval — closed semantics, matching
    /// [`intersect_interval`](Self::intersect_interval) which this
    /// generalizes (`eps_sq = 0` solves the same predicate through the
    /// distance machinery).
    ///
    /// This is the refine primitive of the ε-threshold similarity join
    /// (`cij-simjoin`); both the engine and its brute-force oracle call
    /// it with identical arguments, so their answers agree bit for bit.
    /// Both window ends must be finite.
    #[must_use]
    pub fn within_dist_sq_interval(
        &self,
        other: &Self,
        eps_sq: f64,
        t0: Time,
        t1: Time,
    ) -> Option<TimeInterval> {
        debug_assert!(t1 >= t0);
        debug_assert!(eps_sq >= 0.0);
        debug_assert!(t0.is_finite() && t1.is_finite(), "window must be finite");
        let mut cuts = Vec::with_capacity(3 * DIMS + 2);
        cuts.push(t0);
        breakpoints(self, other, t0, t1, &mut cuts);
        cuts.push(t1);
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));

        let mut entry: Option<f64> = None;
        let mut exit = t0;
        for w in cuts.windows(2) {
            let (s, e) = (w[0], w[1]);
            // Identify the quadratic of this smooth piece at its
            // midpoint (valid across the whole piece; for a degenerate
            // piece s == e the midpoint is the point itself).
            let [qa, qb, qc] = self.dist_sq_quad_piece(other, (s + e) / 2.0);
            // Solve qa·t² + qb·t + qc ≤ eps_sq on [s, e].
            let (lo, hi) = if qa == 0.0 {
                // All active gap lines are constant on this piece, so the
                // linear term vanishes with the quadratic one.
                debug_assert!(qb == 0.0, "linear term without quadratic term");
                if qc <= eps_sq {
                    (s, e)
                } else {
                    continue;
                }
            } else {
                let disc = qb * qb - 4.0 * qa * (qc - eps_sq);
                if disc < 0.0 {
                    continue;
                }
                let root = disc.sqrt();
                let r_lo = (-qb - root) / (2.0 * qa);
                let r_hi = (-qb + root) / (2.0 * qa);
                (r_lo.max(s), r_hi.min(e))
            };
            if lo <= hi {
                if entry.is_none() {
                    entry = Some(lo);
                }
                exit = exit.max(hi);
            }
        }
        TimeInterval::new(entry?, exit)
    }

    /// Squared distance from a static point at instant `t`.
    #[must_use]
    pub fn dist_sq_to_point_at(&self, q: [f64; DIMS], t: Time) -> f64 {
        self.at(t).min_dist_sq(q)
    }

    /// Exact minimum squared distance from a static point over
    /// `[t0, t1]` (with witness time).
    #[must_use]
    pub fn min_dist_sq_to_point_interval(&self, q: [f64; DIMS], t0: Time, t1: Time) -> (f64, Time) {
        let point = MovingRect::stationary(crate::Rect::point(q), t0);
        self.min_dist_sq_interval(&point, t0, t1)
    }

    /// Exact maximum squared distance from a static point over
    /// `[t0, t1]` (convex ⇒ endpoint).
    #[must_use]
    pub fn max_dist_sq_to_point_interval(&self, q: [f64; DIMS], t0: Time, t1: Time) -> f64 {
        self.dist_sq_to_point_at(q, t0)
            .max(self.dist_sq_to_point_at(q, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn rect(x: f64, y: f64, side: f64, vx: f64, vy: f64) -> MovingRect {
        MovingRect::rigid(Rect::new([x, y], [x + side, y + side]), [vx, vy], 0.0)
    }

    #[test]
    fn dist_at_matches_static_geometry() {
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(4.0, 0.0, 1.0, 0.0, 0.0);
        assert_eq!(a.dist_sq_at(&b, 0.0), 9.0); // gap 3 in x
        let c = rect(4.0, 5.0, 1.0, 0.0, 0.0);
        assert_eq!(a.dist_sq_at(&c, 0.0), 9.0 + 16.0);
        // Intersecting rects: zero.
        let d = rect(0.5, 0.5, 1.0, 0.0, 0.0);
        assert_eq!(a.dist_sq_at(&d, 0.0), 0.0);
    }

    #[test]
    fn min_over_interval_flyby() {
        // b passes a at constant y-offset 3: min distance = 3 at closest
        // approach in x.
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(10.0, 4.0, 1.0, -1.0, 0.0); // y gap = 3 always
        let (d2, t) = a.min_dist_sq_interval(&b, 0.0, 30.0);
        assert!((d2 - 9.0).abs() < 1e-9, "min dist² {d2}");
        // Closest approach while x-overlap: b.lo ≤ 1 and b.hi ≥ 0:
        // t ∈ [9, 11]; witness inside.
        assert!((9.0..=11.0).contains(&t), "witness {t}");
    }

    #[test]
    fn min_is_zero_on_contact() {
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(10.0, 0.0, 1.0, -1.0, 0.0);
        let (d2, t) = a.min_dist_sq_interval(&b, 0.0, 30.0);
        assert_eq!(d2, 0.0);
        assert!((t - 9.0).abs() < 1e-9, "first contact at 9, got {t}");
    }

    #[test]
    fn min_clipped_by_window() {
        // Contact would be at t=9; a window ending earlier sees the
        // shrinking positive gap at its end.
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(10.0, 0.0, 1.0, -1.0, 0.0);
        let (d2, t) = a.min_dist_sq_interval(&b, 0.0, 5.0);
        // At t=5: b.lo = 5, gap = 4 ⇒ 16.
        assert!((d2 - 16.0).abs() < 1e-9, "got {d2}");
        assert_eq!(t, 5.0);
    }

    #[test]
    fn diagonal_closest_approach_is_interior() {
        // Two points crossing diagonally: closest approach strictly
        // inside the window, quadratic vertex case.
        let a = MovingRect::rigid(Rect::point([0.0, 0.0]), [1.0, 0.0], 0.0);
        let b = MovingRect::rigid(Rect::point([10.0, 5.0]), [-1.0, 0.0], 0.0);
        // x gap closes at t=5, y gap constant 5 ⇒ min dist² = 25 at t=5.
        let (d2, t) = a.min_dist_sq_interval(&b, 0.0, 20.0);
        assert!((d2 - 25.0).abs() < 1e-9);
        assert!((4.9..=5.1).contains(&t));
    }

    #[test]
    fn max_is_at_endpoint() {
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(10.0, 0.0, 1.0, -1.0, 0.0);
        // Distance shrinks monotonically until contact: max at t0.
        let m = a.max_dist_sq_interval(&b, 0.0, 5.0);
        assert!((m - 81.0).abs() < 1e-9, "gap 9 at t=0, got {m}");
        // Receding: max at t1.
        let c = rect(2.0, 0.0, 1.0, 1.0, 0.0);
        let m = a.max_dist_sq_interval(&c, 0.0, 10.0);
        assert!((m - 121.0).abs() < 1e-9, "gap 11 at t=10, got {m}");
    }

    #[test]
    fn within_interval_flyby() {
        // b passes a at constant y-offset 3 (see min_over_interval_flyby):
        // dist ≤ 4 exactly while the x-gap g(t) satisfies g² + 9 ≤ 16.
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(10.0, 4.0, 1.0, -1.0, 0.0);
        let iv = a.within_dist_sq_interval(&b, 16.0, 0.0, 30.0).unwrap();
        // x-gap before overlap is 9 − t (b.lo − a.hi): ≤ √7 at
        // t = 9 − √7; after overlap it is t − 11: exits at 11 + √7.
        assert!((iv.start - (9.0 - 7.0f64.sqrt())).abs() < 1e-9, "{iv:?}");
        assert!((iv.end - (11.0 + 7.0f64.sqrt())).abs() < 1e-9, "{iv:?}");
        // Below the minimum distance (3): never within.
        assert!(a.within_dist_sq_interval(&b, 8.9, 0.0, 30.0).is_none());
    }

    #[test]
    fn within_at_exact_tangency_is_a_single_instant() {
        // Minimum distance is exactly 3 (flyby geometry): eps = 3 yields
        // a non-empty interval even though the quadratic only touches.
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(10.0, 4.0, 1.0, -1.0, 0.0);
        let iv = a.within_dist_sq_interval(&b, 9.0, 0.0, 30.0).unwrap();
        assert!(iv.start <= iv.end);
        // Tangency happens while the rects overlap in x: t ∈ [9, 11].
        assert!((9.0..=11.0).contains(&iv.start), "{iv:?}");
        let (min_d2, _) = a.min_dist_sq_interval(&b, 0.0, 30.0);
        assert!((min_d2 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn within_zero_eps_matches_intersection() {
        let a = rect(0.0, 0.0, 1.0, 1.0, 0.0);
        let b = rect(11.0, 0.0, 1.0, -1.0, 0.0);
        let via_dist = a.within_dist_sq_interval(&b, 0.0, 0.0, 30.0).unwrap();
        let via_intersect = a.intersect_interval(&b, 0.0, 30.0).unwrap();
        assert!((via_dist.start - via_intersect.start).abs() < 1e-9);
        assert!((via_dist.end - via_intersect.end).abs() < 1e-9);
    }

    #[test]
    fn within_clamps_to_window() {
        let a = rect(0.0, 0.0, 1.0, 0.0, 0.0);
        let b = rect(10.0, 0.0, 1.0, -1.0, 0.0);
        // Contact at t = 9; with eps = 2 the pair is within from t = 7.
        let iv = a.within_dist_sq_interval(&b, 4.0, 0.0, 8.0).unwrap();
        assert!((iv.start - 7.0).abs() < 1e-9, "{iv:?}");
        assert_eq!(iv.end, 8.0);
        // A window entirely inside the within-range is returned whole.
        let iv = a.within_dist_sq_interval(&b, 4.0, 7.5, 8.0).unwrap();
        assert_eq!((iv.start, iv.end), (7.5, 8.0));
        // A window ending before the approach sees nothing.
        assert!(a.within_dist_sq_interval(&b, 4.0, 0.0, 5.0).is_none());
    }

    #[test]
    fn within_agrees_with_dense_sampling() {
        // Sample dist² on a fine grid and check interval membership
        // matches the closed form (away from the boundary).
        let a = rect(2.0, 1.0, 2.0, 0.5, -0.25);
        let b = rect(14.0, -6.0, 1.5, -0.75, 0.5);
        for eps_sq in [0.5, 4.0, 25.0, 100.0] {
            let iv = a.within_dist_sq_interval(&b, eps_sq, 0.0, 40.0);
            for k in 0..=4000 {
                let t = k as f64 * 0.01;
                let d2 = a.dist_sq_at(&b, t);
                let inside = iv.is_some_and(|iv| iv.contains(t));
                if d2 < eps_sq - 1e-6 {
                    assert!(inside, "t={t} d²={d2} eps²={eps_sq} iv={iv:?}");
                }
                if d2 > eps_sq + 1e-6 {
                    assert!(!inside, "t={t} d²={d2} eps²={eps_sq} iv={iv:?}");
                }
            }
        }
    }

    #[test]
    fn within_interval_respects_inflation_equivalence() {
        // L∞ soundness of Minkowski inflation: whenever dist ≤ eps, the
        // eps-inflated partner intersects the original — the candidate
        // superset property the similarity join's candidate phase uses.
        let a = rect(0.0, 0.0, 1.0, 0.4, -0.2);
        let b = rect(9.0, 7.0, 1.0, -0.6, -0.5);
        let eps = 2.5;
        if let Some(iv) = a.within_dist_sq_interval(&b, eps * eps, 0.0, 30.0) {
            let inflated = b.inflate(eps);
            let cand = a
                .intersect_interval(&inflated, 0.0, 30.0)
                .expect("within ⇒ inflated intersection");
            assert!(cand.start <= iv.start + 1e-9 && iv.end <= cand.end + 1e-9);
        }
    }

    #[test]
    fn point_variants_agree_with_rect_machinery() {
        let m = rect(3.0, 4.0, 2.0, -1.0, 0.5);
        let q = [0.0, 0.0];
        for t in [0.0, 2.0, 7.5] {
            let via_rect = m.dist_sq_to_point_at(q, t);
            let p = MovingRect::stationary(Rect::point(q), 0.0);
            assert!((via_rect - m.dist_sq_at(&p, t)).abs() < 1e-9);
        }
        let (d2, t) = m.min_dist_sq_to_point_interval(q, 0.0, 10.0);
        assert!(d2 >= 0.0 && (0.0..=10.0).contains(&t));
    }
}
