//! Closed time intervals `[start, end]` with a possibly-infinite end.
//!
//! Join algorithms in the paper communicate exclusively through such
//! intervals: `intersect(e_A, e_B, t_s, t_e)` either returns the
//! sub-interval of `[t_s, t_e]` during which the two entries intersect, or
//! `NULL`. We encode `NULL` as `Option<TimeInterval>` and the infinite
//! timestamp `∞` as [`INFINITE_TIME`].

use crate::Time;

/// The paper's `∞` timestamp: `NaiveJoin` computes join pairs over
/// `[t_c, ∞)`; time-constrained processing replaces this bound.
pub const INFINITE_TIME: Time = f64::INFINITY;

/// A closed time interval `[start, end]`, `start <= end`; `end` may be
/// [`INFINITE_TIME`].
///
/// Intervals returned by intersection tests are always non-empty: an empty
/// result is represented as `None` at the call site, never as a degenerate
/// interval with `start > end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeInterval {
    /// Inclusive lower end.
    pub start: Time,
    /// Inclusive upper end; may be `+∞`.
    pub end: Time,
}

impl TimeInterval {
    /// Creates `[start, end]`. Returns `None` when `start > end` (the
    /// empty interval) so that emptiness is impossible to ignore.
    #[inline]
    pub fn new(start: Time, end: Time) -> Option<Self> {
        if start <= end {
            Some(Self { start, end })
        } else {
            None
        }
    }

    /// Creates `[start, end]` without the emptiness check.
    ///
    /// # Panics
    /// Panics in debug builds when `start > end`.
    #[inline]
    pub fn new_unchecked(start: Time, end: Time) -> Self {
        debug_assert!(start <= end, "empty interval [{start}, {end}]");
        Self { start, end }
    }

    /// The half-open-at-infinity interval `[start, ∞)`.
    #[inline]
    pub fn from(start: Time) -> Self {
        Self {
            start,
            end: INFINITE_TIME,
        }
    }

    /// The full time axis `(-∞, ∞)` — used as the identity for interval
    /// intersection when accumulating per-dimension constraints.
    #[inline]
    pub fn all() -> Self {
        Self {
            start: f64::NEG_INFINITY,
            end: INFINITE_TIME,
        }
    }

    /// Intersection of two closed intervals; `None` when disjoint.
    #[inline]
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        Self::new(start, end)
    }

    /// Whether `t` lies inside the interval (inclusive ends).
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `other` is entirely inside `self`.
    #[inline]
    pub fn covers(&self, other: &Self) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two intervals share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Length of the interval (`∞` for unbounded intervals).
    #[inline]
    pub fn length(&self) -> Time {
        self.end - self.start
    }

    /// Whether the upper end is the infinite timestamp.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.end == INFINITE_TIME
    }

    /// Clamps the interval to `[lo, hi]`; `None` when nothing remains.
    #[inline]
    pub fn clamp_to(&self, lo: Time, hi: Time) -> Option<Self> {
        self.intersect(&Self { start: lo, end: hi })
    }
}

/// Solves the linear inequality `c0 + c1·t ≤ 0` over the whole time axis.
///
/// Returns the (closed, possibly unbounded, possibly empty) solution set.
/// This is the scalar primitive under every moving-rectangle intersection
/// test: each "lower bound of A stays below upper bound of B in dimension
/// d" constraint is exactly one such inequality.
#[inline]
pub fn solve_linear_leq(c0: f64, c1: f64) -> Option<TimeInterval> {
    if c1 == 0.0 {
        // Constant constraint: either always or never satisfied.
        if c0 <= 0.0 {
            Some(TimeInterval::all())
        } else {
            None
        }
    } else {
        let root = -c0 / c1;
        if c1 > 0.0 {
            // Satisfied for t <= root.
            TimeInterval::new(f64::NEG_INFINITY, root)
        } else {
            // Satisfied for t >= root.
            TimeInterval::new(root, INFINITE_TIME)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert!(TimeInterval::new(2.0, 1.0).is_none());
        assert!(TimeInterval::new(1.0, 1.0).is_some());
    }

    #[test]
    fn intersect_overlapping() {
        let a = TimeInterval::new_unchecked(0.0, 10.0);
        let b = TimeInterval::new_unchecked(5.0, 15.0);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, TimeInterval::new_unchecked(5.0, 10.0));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = TimeInterval::new_unchecked(0.0, 1.0);
        let b = TimeInterval::new_unchecked(2.0, 3.0);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn intersect_touching_is_instant() {
        let a = TimeInterval::new_unchecked(0.0, 2.0);
        let b = TimeInterval::new_unchecked(2.0, 3.0);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c.start, 2.0);
        assert_eq!(c.end, 2.0);
        assert_eq!(c.length(), 0.0);
    }

    #[test]
    fn unbounded_interval() {
        let a = TimeInterval::from(3.0);
        assert!(a.is_unbounded());
        assert!(a.contains(1e18));
        assert!(!a.contains(2.9));
        assert_eq!(a.length(), INFINITE_TIME);
    }

    #[test]
    fn covers_and_overlaps() {
        let outer = TimeInterval::new_unchecked(0.0, 10.0);
        let inner = TimeInterval::new_unchecked(2.0, 8.0);
        let side = TimeInterval::new_unchecked(9.0, 12.0);
        assert!(outer.covers(&inner));
        assert!(!inner.covers(&outer));
        assert!(outer.overlaps(&side));
        assert!(!inner.overlaps(&TimeInterval::new_unchecked(8.5, 9.0)));
    }

    #[test]
    fn clamp_to_window() {
        let a = TimeInterval::from(5.0);
        let c = a.clamp_to(0.0, 60.0).unwrap();
        assert_eq!(c, TimeInterval::new_unchecked(5.0, 60.0));
        assert!(a.clamp_to(0.0, 4.0).is_none());
    }

    #[test]
    fn solve_leq_constant() {
        assert!(solve_linear_leq(-1.0, 0.0).unwrap().contains(1e9));
        assert!(solve_linear_leq(1.0, 0.0).is_none());
        // Boundary: 0 <= 0 holds everywhere.
        assert!(solve_linear_leq(0.0, 0.0).is_some());
    }

    #[test]
    fn solve_leq_positive_slope() {
        // 2 + 1·t <= 0  ⇔  t <= -2
        let s = solve_linear_leq(2.0, 1.0).unwrap();
        assert_eq!(s.end, -2.0);
        assert!(s.contains(-3.0));
        assert!(!s.contains(-1.0));
    }

    #[test]
    fn solve_leq_negative_slope() {
        // 2 - 1·t <= 0  ⇔  t >= 2
        let s = solve_linear_leq(2.0, -1.0).unwrap();
        assert_eq!(s.start, 2.0);
        assert!(s.is_unbounded());
        assert!(!s.contains(1.0));
    }
}
