//! Moving rectangles: an MBR captured at a reference time plus a velocity
//! bounding rectangle (VBR). Every bound is a linear function of time.
//!
//! This is the object model of the paper (§II-A): a moving object `O` is
//! `⟨O.Rx−, O.Rx+, O.Ry−, O.Ry+⟩` at reference time `t_ref` together with
//! `⟨O.Vx−, O.Vx+, O.Vy−, O.Vy+⟩`. Data objects move rigidly
//! (`vlo == vhi` per dimension); TPR-tree node rectangles have
//! `vlo <= vhi`, so they expand over time and conservatively bound their
//! children at every future instant.

use crate::interval::{solve_linear_leq, TimeInterval, INFINITE_TIME};
use crate::{Rect, Time, DIMS};

/// A time-parameterized rectangle: `lo(t) = lo + vlo·(t − t_ref)`,
/// `hi(t) = hi + vhi·(t − t_ref)` per dimension.
///
/// Invariants (checked in debug builds):
/// * `lo[d] <= hi[d]` at `t_ref`;
/// * bounds remain ordered for all `t >= t_ref` whenever `vlo[d] <=
///   vhi[d]` — which holds for rigid objects and for bounding unions.
///
/// The rectangle is only meaningful for `t >= t_ref` (TPR semantics: a
/// node's bounds are conservative from the time they were written
/// onward). All queries in this codebase satisfy that by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingRect {
    /// Lower bounds at `t_ref`.
    pub lo: [f64; DIMS],
    /// Upper bounds at `t_ref`.
    pub hi: [f64; DIMS],
    /// Velocities of the lower bounds.
    pub vlo: [f64; DIMS],
    /// Velocities of the upper bounds.
    pub vhi: [f64; DIMS],
    /// Reference time at which `lo`/`hi` were captured.
    pub t_ref: Time,
}

impl MovingRect {
    /// Creates a moving rectangle from explicit bounds.
    ///
    /// # Panics
    /// Panics in debug builds when the rectangle is inverted at `t_ref`.
    #[inline]
    pub fn new(
        lo: [f64; DIMS],
        hi: [f64; DIMS],
        vlo: [f64; DIMS],
        vhi: [f64; DIMS],
        t_ref: Time,
    ) -> Self {
        debug_assert!(
            (0..DIMS).all(|d| lo[d] <= hi[d]),
            "inverted moving rect at t_ref: lo={lo:?} hi={hi:?}"
        );
        Self {
            lo,
            hi,
            vlo,
            vhi,
            t_ref,
        }
    }

    /// A rigid moving rectangle: the whole MBR translates with one
    /// velocity `v` (the common case for data objects).
    #[inline]
    pub fn rigid(rect: Rect, v: [f64; DIMS], t_ref: Time) -> Self {
        Self::new(rect.lo, rect.hi, v, v, t_ref)
    }

    /// A stationary rectangle (zero velocities).
    #[inline]
    pub fn stationary(rect: Rect, t_ref: Time) -> Self {
        Self::rigid(rect, [0.0; DIMS], t_ref)
    }

    /// The rectangle frozen at timestamp `t`.
    #[inline]
    pub fn at(&self, t: Time) -> Rect {
        let dt = t - self.t_ref;
        let mut lo = [0.0; DIMS];
        let mut hi = [0.0; DIMS];
        for d in 0..DIMS {
            lo[d] = self.lo[d] + self.vlo[d] * dt;
            hi[d] = self.hi[d] + self.vhi[d] * dt;
        }
        Rect { lo, hi }
    }

    /// Lower bound of dimension `d` at time `t`.
    #[inline]
    pub fn lo_at(&self, d: usize, t: Time) -> f64 {
        self.lo[d] + self.vlo[d] * (t - self.t_ref)
    }

    /// Upper bound of dimension `d` at time `t`.
    #[inline]
    pub fn hi_at(&self, d: usize, t: Time) -> f64 {
        self.hi[d] + self.vhi[d] * (t - self.t_ref)
    }

    /// Re-expresses the same trajectory with reference time `t`.
    ///
    /// Lossless for rigid rectangles; for expanding rectangles it simply
    /// freezes the current (already conservative) bounds at the new
    /// reference, so it stays conservative for `t' >= t` but does not
    /// tighten anything.
    #[inline]
    pub fn rebase(&self, t: Time) -> Self {
        let r = self.at(t);
        Self {
            lo: r.lo,
            hi: r.hi,
            vlo: self.vlo,
            vhi: self.vhi,
            t_ref: t,
        }
    }

    /// Whether `self` bounds `other` at every instant `t >= from`.
    ///
    /// For linear bounds this reduces to containment at `from` plus the
    /// velocity dominance test — the invariant a TPR-tree node must
    /// maintain over its children.
    pub fn contains_moving_from(&self, other: &Self, from: Time) -> bool {
        let a = self.at(from);
        let b = other.at(from);
        if !a.contains_rect(&b) {
            return false;
        }
        (0..DIMS).all(|d| self.vlo[d] <= other.vlo[d] && other.vhi[d] <= self.vhi[d])
    }

    /// The tightest moving rectangle that bounds both `self` and `other`
    /// for all `t >= max(self.t_ref, other.t_ref)`.
    ///
    /// Both inputs are rebased to the later reference time; spatial bounds
    /// take min/max there and velocity bounds take min/max directly.
    pub fn union_moving(&self, other: &Self) -> Self {
        let t = self.t_ref.max(other.t_ref);
        let a = self.at(t);
        let b = other.at(t);
        let mut lo = [0.0; DIMS];
        let mut hi = [0.0; DIMS];
        let mut vlo = [0.0; DIMS];
        let mut vhi = [0.0; DIMS];
        for d in 0..DIMS {
            lo[d] = a.lo[d].min(b.lo[d]);
            hi[d] = a.hi[d].max(b.hi[d]);
            vlo[d] = self.vlo[d].min(other.vlo[d]);
            vhi[d] = self.vhi[d].max(other.vhi[d]);
        }
        Self {
            lo,
            hi,
            vlo,
            vhi,
            t_ref: t,
        }
    }

    /// The paper's `intersect(e_A, e_B, t_s, t_e)` primitive: the
    /// sub-interval of `[t_s, t_e]` during which the two moving
    /// rectangles intersect, or `None`.
    ///
    /// Because every bound is linear, each of the four "lower bound of one
    /// stays at or below upper bound of the other" constraints solves to a
    /// half-line; their intersection with the query window is a single
    /// closed interval. `t_e` may be [`INFINITE_TIME`] (that is exactly
    /// what `NaiveJoin` passes).
    pub fn intersect_interval(&self, other: &Self, t_s: Time, t_e: Time) -> Option<TimeInterval> {
        let mut acc = TimeInterval::new(t_s, t_e)?;
        for d in 0..DIMS {
            // self.lo_d(t) <= other.hi_d(t)
            //   (lo_a − vlo_a·ta) − (hi_b − vhi_b·tb) + (vlo_a − vhi_b)·t <= 0
            let c0 = (self.lo[d] - self.vlo[d] * self.t_ref)
                - (other.hi[d] - other.vhi[d] * other.t_ref);
            let c1 = self.vlo[d] - other.vhi[d];
            acc = acc.intersect(&solve_linear_leq(c0, c1)?)?;

            // other.lo_d(t) <= self.hi_d(t)
            let c0 = (other.lo[d] - other.vlo[d] * other.t_ref)
                - (self.hi[d] - self.vhi[d] * self.t_ref);
            let c1 = other.vlo[d] - self.vhi[d];
            acc = acc.intersect(&solve_linear_leq(c0, c1)?)?;
        }
        Some(acc)
    }

    /// Whether the two rectangles intersect at instant `t`.
    #[inline]
    pub fn intersects_at(&self, other: &Self, t: Time) -> bool {
        self.at(t).intersects(&other.at(t))
    }

    /// The *influence time* of the pair (TP-join, §III): the earliest
    /// `t > t_c` at which the intersection status of the pair changes,
    /// or [`INFINITE_TIME`] when the status never changes after `t_c`.
    ///
    /// Since the pair's intersection set over `[t_c, ∞)` is one interval
    /// `I`, the next change is `I.start` when the pair is currently
    /// separated, and `I.end` when currently intersecting (∞ when they
    /// never separate).
    pub fn influence_time(&self, other: &Self, t_c: Time) -> Time {
        match self.intersect_interval(other, t_c, INFINITE_TIME) {
            None => INFINITE_TIME,
            Some(i) => {
                if i.start > t_c {
                    i.start
                } else if i.end == INFINITE_TIME {
                    INFINITE_TIME
                } else {
                    i.end
                }
            }
        }
    }

    /// Extent in dimension `d` at time `t`.
    #[inline]
    pub fn extent_at(&self, d: usize, t: Time) -> f64 {
        (self.hi[d] - self.lo[d]) + (self.vhi[d] - self.vlo[d]) * (t - self.t_ref)
    }

    /// Area at time `t`.
    #[inline]
    pub fn area_at(&self, t: Time) -> f64 {
        self.extent_at(0, t) * self.extent_at(1, t)
    }

    /// `∫_{t0}^{t1} area(t) dt`, exact closed form.
    ///
    /// This is the TPR-tree's core quality metric: insertion heuristics
    /// minimize the integral of (enlarged) area over the horizon instead
    /// of instantaneous area. Valid whenever the extents stay
    /// non-negative over `[t0, t1]`, which holds for `t0 >= t_ref` and
    /// `vhi >= vlo` (bounding rectangles always satisfy both).
    pub fn area_integral(&self, t0: Time, t1: Time) -> f64 {
        debug_assert!(t1 >= t0);
        // extent_d(t) = e_d + de_d·(t − t_ref); substitute u = t − t_ref.
        let e0 = self.hi[0] - self.lo[0];
        let e1 = self.hi[1] - self.lo[1];
        let de0 = self.vhi[0] - self.vlo[0];
        let de1 = self.vhi[1] - self.vlo[1];
        let u0 = t0 - self.t_ref;
        let u1 = t1 - self.t_ref;
        // ∫ (e0 + de0·u)(e1 + de1·u) du
        //   = e0·e1·u + (e0·de1 + e1·de0)·u²/2 + de0·de1·u³/3
        let poly = |u: f64| {
            e0 * e1 * u + (e0 * de1 + e1 * de0) * u * u / 2.0 + de0 * de1 * u * u * u / 3.0
        };
        poly(u1) - poly(u0)
    }

    /// `∫_{t0}^{t1} margin(t) dt` where margin is the half-perimeter.
    pub fn margin_integral(&self, t0: Time, t1: Time) -> f64 {
        debug_assert!(t1 >= t0);
        let e = (self.hi[0] - self.lo[0]) + (self.hi[1] - self.lo[1]);
        let de = (self.vhi[0] - self.vlo[0]) + (self.vhi[1] - self.vlo[1]);
        let u0 = t0 - self.t_ref;
        let u1 = t1 - self.t_ref;
        let poly = |u: f64| e * u + de * u * u / 2.0;
        poly(u1) - poly(u0)
    }

    /// `∫_{t0}^{t1} overlap_area(self(t), other(t)) dt`, exact.
    ///
    /// The overlap extent in each dimension is
    /// `max(0, min(hiA, hiB)(t) − max(loA, loB)(t))` — piecewise linear
    /// with breakpoints where the competing lines cross or the extent hits
    /// zero. We split `[t0, t1]` at all such breakpoints and integrate the
    /// (quadratic) product exactly on each smooth segment.
    pub fn overlap_integral(&self, other: &Self, t0: Time, t1: Time) -> f64 {
        debug_assert!(t1 >= t0);
        if t1 == t0 {
            return 0.0;
        }
        // Collect breakpoints: per dimension, crossings of (hiA, hiB),
        // (loA, loB), and zeros of the clamped extent (crossings of the
        // chosen min-hi with the chosen max-lo change only at the other
        // crossings, so including all pairwise line crossings of the four
        // bounds is sufficient and cheap).
        let mut cuts = [0.0f64; 2 + DIMS * 6];
        let mut n_cuts = 0;
        let push = |t: f64, cuts: &mut [f64], n: &mut usize| {
            if t > t0 && t < t1 && t.is_finite() {
                cuts[*n] = t;
                *n += 1;
            }
        };
        for d in 0..DIMS {
            // Line form: value(t) = b + v·t with b normalized to t=0.
            let a_lo = (self.lo[d] - self.vlo[d] * self.t_ref, self.vlo[d]);
            let a_hi = (self.hi[d] - self.vhi[d] * self.t_ref, self.vhi[d]);
            let b_lo = (other.lo[d] - other.vlo[d] * other.t_ref, other.vlo[d]);
            let b_hi = (other.hi[d] - other.vhi[d] * other.t_ref, other.vhi[d]);
            let crossings = [
                (a_hi, b_hi),
                (a_lo, b_lo),
                (a_hi, b_lo),
                (a_lo, b_hi),
                (a_hi, a_lo), // degenerate, never crosses for valid rects
                (b_hi, b_lo),
            ];
            for ((b1, v1), (b2, v2)) in crossings {
                if v1 != v2 {
                    push((b2 - b1) / (v1 - v2), &mut cuts, &mut n_cuts);
                }
            }
        }
        let cuts = &mut cuts[..n_cuts];
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));

        // Integrate segment by segment; within a segment each dimension's
        // clamped overlap extent is a single linear function, so sampling
        // the extent lines at the segment midpoint identifies the active
        // pieces and the product integrates exactly via Simpson's rule
        // (exact for quadratics).
        let mut total = 0.0;
        let mut seg_start = t0;
        let mut i = 0;
        loop {
            let seg_end = if i < cuts.len() { cuts[i] } else { t1 };
            if seg_end > seg_start {
                let f = |t: Time| -> f64 {
                    let ra = self.at(t);
                    let rb = other.at(t);
                    let mut prod = 1.0;
                    for d in 0..DIMS {
                        let ext = (ra.hi[d].min(rb.hi[d]) - ra.lo[d].max(rb.lo[d])).max(0.0);
                        prod *= ext;
                    }
                    prod
                };
                let m = (seg_start + seg_end) / 2.0;
                let h = seg_end - seg_start;
                total += h / 6.0 * (f(seg_start) + 4.0 * f(m) + f(seg_end));
            }
            if i >= cuts.len() {
                break;
            }
            seg_start = seg_end.max(seg_start);
            i += 1;
        }
        total
    }

    /// Integral over `[t0, t1]` of the *enlargement* of `self`'s area if
    /// it had to absorb `other` — the TPR-tree choose-subtree penalty.
    pub fn enlargement_integral(&self, other: &Self, t0: Time, t1: Time) -> f64 {
        let u = self.union_moving(other);
        u.area_integral(t0, t1) - self.area_integral(t0, t1)
    }

    /// The Minkowski-inflated rectangle: every spatial bound pushed
    /// outward by `eps`, velocities unchanged (a rigid inflation, so the
    /// result is a valid TPR registration with the same `t_ref`).
    ///
    /// Inflation turns a distance predicate into an intersection one:
    /// `self` intersects `other.inflate(eps)` at `t` **iff** every
    /// per-dimension gap between `self` and `other` is ≤ `eps` at `t`
    /// (L∞ distance ≤ `eps`). Since the Euclidean rectangle distance
    /// dominates every per-dimension gap, `dist(self, other) ≤ eps`
    /// implies the inflated intersection — the candidate-superset
    /// property the ε-threshold similarity join (`cij-simjoin`) builds
    /// its filter phase on.
    #[must_use]
    pub fn inflate(&self, eps: f64) -> Self {
        debug_assert!(eps >= 0.0, "negative inflation {eps}");
        let mut lo = self.lo;
        let mut hi = self.hi;
        for d in 0..DIMS {
            lo[d] -= eps;
            hi[d] += eps;
        }
        Self {
            lo,
            hi,
            vlo: self.vlo,
            vhi: self.vhi,
            t_ref: self.t_ref,
        }
    }

    /// Sum over dimensions of `|vlo| + |vhi|` — the speed mass used by the
    /// paper's *dimension selection* heuristic (§IV-D2) to pick the
    /// sorting dimension with the least movement.
    #[inline]
    pub fn speed_sum(&self, d: usize) -> f64 {
        self.vlo[d].abs() + self.vhi[d].abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rigid(x: f64, y: f64, side: f64, vx: f64, vy: f64, t_ref: Time) -> MovingRect {
        MovingRect::rigid(Rect::new([x, y], [x + side, y + side]), [vx, vy], t_ref)
    }

    #[test]
    fn at_evaluates_linear_motion() {
        let m = rigid(0.0, 0.0, 2.0, 1.0, -0.5, 10.0);
        let r = m.at(14.0);
        assert_eq!(r, Rect::new([4.0, -2.0], [6.0, 0.0]));
    }

    #[test]
    fn rebase_is_lossless_for_rigid() {
        let m = rigid(3.0, 4.0, 1.0, -2.0, 0.5, 0.0);
        let rb = m.rebase(7.0);
        for t in [7.0, 8.5, 100.0] {
            assert_eq!(m.at(t), rb.at(t));
        }
        assert_eq!(rb.t_ref, 7.0);
    }

    #[test]
    fn head_on_collision_interval() {
        // Two unit squares 10 apart closing at combined speed 2 in x.
        let a = rigid(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let b = rigid(11.0, 0.0, 1.0, -1.0, 0.0, 0.0);
        // Gap is 10 at t=0; contact when a.hi(t) = b.lo(t):
        //   1 + t = 11 − t  ⇒  t = 5; separation when a.lo = b.hi:
        //   t = ... a.lo(t)=t, b.hi(t)=12−t ⇒ t=6.
        let i = a.intersect_interval(&b, 0.0, INFINITE_TIME).unwrap();
        assert!((i.start - 5.0).abs() < 1e-12);
        assert!((i.end - 6.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_movers_never_meet() {
        let a = rigid(0.0, 0.0, 1.0, 3.0, 3.0, 0.0);
        let b = rigid(5.0, 5.0, 1.0, 3.0, 3.0, 0.0);
        assert!(a.intersect_interval(&b, 0.0, INFINITE_TIME).is_none());
    }

    #[test]
    fn already_intersecting_pair() {
        let a = rigid(0.0, 0.0, 4.0, 0.0, 0.0, 0.0);
        let b = rigid(1.0, 1.0, 1.0, 1.0, 0.0, 0.0);
        let i = a.intersect_interval(&b, 0.0, INFINITE_TIME).unwrap();
        assert_eq!(i.start, 0.0);
        // b escapes to the right: b.lo_x(t) = 1 + t > 4 at t = 3.
        assert!((i.end - 3.0).abs() < 1e-12);
    }

    #[test]
    fn window_clamps_interval() {
        let a = rigid(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let b = rigid(11.0, 0.0, 1.0, -1.0, 0.0, 0.0);
        // Contact interval is [5, 6]; a [0, 5.5] window clips it.
        let i = a.intersect_interval(&b, 0.0, 5.5).unwrap();
        assert_eq!(i.end, 5.5);
        // A window that ends before contact yields nothing.
        assert!(a.intersect_interval(&b, 0.0, 4.9).is_none());
        // A window strictly inside the contact interval is returned as-is.
        let i = a.intersect_interval(&b, 5.2, 5.4).unwrap();
        assert_eq!(i, TimeInterval::new_unchecked(5.2, 5.4));
    }

    #[test]
    fn different_reference_times_agree() {
        let a = rigid(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let b = rigid(11.0, 0.0, 1.0, -1.0, 0.0, 0.0).rebase(3.0);
        let i = a.intersect_interval(&b, 0.0, INFINITE_TIME).unwrap();
        assert!((i.start - 5.0).abs() < 1e-12);
        assert!((i.end - 6.0).abs() < 1e-12);
    }

    #[test]
    fn influence_time_cases() {
        let a = rigid(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let b = rigid(11.0, 0.0, 1.0, -1.0, 0.0, 0.0);
        // Not yet intersecting: next change is first contact at t=5.
        assert!((a.influence_time(&b, 0.0) - 5.0).abs() < 1e-12);
        // Mid-contact: next change is separation at t=6.
        assert!((a.influence_time(&b, 5.5) - 6.0).abs() < 1e-12);
        // After separation: they never meet again.
        assert_eq!(a.influence_time(&b, 7.0), INFINITE_TIME);
        // Two static overlapping squares never change status.
        let c = rigid(0.0, 0.0, 2.0, 0.0, 0.0, 0.0);
        let d = rigid(1.0, 1.0, 2.0, 0.0, 0.0, 0.0);
        assert_eq!(c.influence_time(&d, 0.0), INFINITE_TIME);
    }

    #[test]
    fn union_bounds_members_over_time() {
        let a = rigid(0.0, 0.0, 1.0, 1.0, -1.0, 0.0);
        let b = rigid(5.0, 5.0, 2.0, -2.0, 3.0, 0.0);
        let u = a.union_moving(&b);
        for t in [0.0, 1.0, 2.5, 10.0, 100.0] {
            assert!(u.at(t).contains_rect(&a.at(t)), "t={t}");
            assert!(u.at(t).contains_rect(&b.at(t)), "t={t}");
        }
        assert!(u.contains_moving_from(&a, 0.0));
        assert!(u.contains_moving_from(&b, 0.0));
    }

    #[test]
    fn union_with_later_reference_time() {
        let a = rigid(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let b = rigid(5.0, 5.0, 1.0, 0.0, 1.0, 4.0);
        let u = a.union_moving(&b);
        assert_eq!(u.t_ref, 4.0);
        for t in [4.0, 6.0, 50.0] {
            assert!(u.at(t).contains_rect(&a.at(t)));
            assert!(u.at(t).contains_rect(&b.at(t)));
        }
    }

    #[test]
    fn contains_moving_needs_velocity_dominance() {
        // Spatial containment at t=0 but child out-runs the parent.
        let parent = MovingRect::new([0.0, 0.0], [10.0, 10.0], [0.0, 0.0], [0.0, 0.0], 0.0);
        let child = rigid(4.0, 4.0, 1.0, 2.0, 0.0, 0.0);
        assert!(!parent.contains_moving_from(&child, 0.0));
        let roomy = MovingRect::new([0.0, 0.0], [10.0, 10.0], [0.0, 0.0], [2.0, 0.0], 0.0);
        assert!(roomy.contains_moving_from(&child, 0.0));
    }

    #[test]
    fn area_integral_static_rect() {
        let m = rigid(0.0, 0.0, 2.0, 5.0, -3.0, 0.0); // rigid ⇒ area constant 4
        assert!((m.area_integral(0.0, 10.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn area_integral_expanding_rect() {
        // Extents (1 + t) × (1 + t): ∫₀¹ (1+t)² dt = 7/3.
        let m = MovingRect::new([0.0, 0.0], [1.0, 1.0], [0.0, 0.0], [1.0, 1.0], 0.0);
        assert!((m.area_integral(0.0, 1.0) - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn margin_integral_expanding_rect() {
        // margin(t) = 2 + 2t; ∫₀² = 4 + 4 = 8.
        let m = MovingRect::new([0.0, 0.0], [1.0, 1.0], [0.0, 0.0], [1.0, 1.0], 0.0);
        assert!((m.margin_integral(0.0, 2.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_integral_matches_hand_computation() {
        // Unit squares, b slides right over a static a:
        // overlap_x(t) = 1 − t for t ∈ [0,1], overlap_y = 1.
        // ∫₀¹ (1−t) dt = 0.5.
        let a = rigid(0.0, 0.0, 1.0, 0.0, 0.0, 0.0);
        let b = rigid(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        assert!((a.overlap_integral(&b, 0.0, 1.0) - 0.5).abs() < 1e-9);
        // After separation the integral stays 0.
        assert!((a.overlap_integral(&b, 1.0, 5.0)).abs() < 1e-9);
        // Whole window [0, 5] = just the initial 0.5.
        assert!((a.overlap_integral(&b, 0.0, 5.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn overlap_integral_disjoint_then_crossing() {
        // b approaches from the right, crosses a, and leaves:
        // contact over [5, 6] with triangular overlap profile in x
        // (peak 1 at t=5.5? No — unit squares crossing: overlap_x rises
        // 0→1 over [5,?]...). Use symmetry: total sweep equals
        // 2·∫₀^{0.5} 2u du? Simpler: validate against dense numeric
        // integration.
        let a = rigid(0.0, 0.0, 1.0, 1.0, 0.0, 0.0);
        let b = rigid(11.0, 0.0, 1.0, -1.0, 0.0, 0.0);
        let exact = a.overlap_integral(&b, 0.0, 10.0);
        let mut numeric = 0.0;
        let steps = 200_000;
        let h = 10.0 / steps as f64;
        for k in 0..steps {
            let t = (k as f64 + 0.5) * h;
            numeric += a.at(t).overlap_area(&b.at(t)) * h;
        }
        assert!(
            (exact - numeric).abs() < 1e-4,
            "exact={exact} numeric={numeric}"
        );
    }

    #[test]
    fn enlargement_integral_zero_for_contained_child() {
        let parent = MovingRect::new([0.0, 0.0], [10.0, 10.0], [-1.0, -1.0], [1.0, 1.0], 0.0);
        let child = rigid(4.0, 4.0, 1.0, 0.5, -0.5, 0.0);
        assert!(parent.contains_moving_from(&child, 0.0));
        let e = parent.enlargement_integral(&child, 0.0, 60.0);
        assert!(e.abs() < 1e-9, "enlargement {e}");
    }

    #[test]
    fn enlargement_integral_positive_for_outsider() {
        let parent = MovingRect::new([0.0, 0.0], [2.0, 2.0], [0.0, 0.0], [0.0, 0.0], 0.0);
        let outsider = rigid(5.0, 5.0, 1.0, 0.0, 0.0, 0.0);
        assert!(parent.enlargement_integral(&outsider, 0.0, 10.0) > 0.0);
    }

    #[test]
    fn inflate_pushes_bounds_and_keeps_motion() {
        let m = rigid(3.0, 4.0, 2.0, 1.0, -0.5, 7.0);
        let f = m.inflate(1.5);
        assert_eq!(f.lo, [1.5, 2.5]);
        assert_eq!(f.hi, [6.5, 7.5]);
        assert_eq!(f.vlo, m.vlo);
        assert_eq!(f.vhi, m.vhi);
        assert_eq!(f.t_ref, 7.0);
        // Zero inflation is the identity.
        assert_eq!(m.inflate(0.0), m);
    }

    #[test]
    fn inflated_intersection_is_linf_distance() {
        // Static geometry: gap 3 in x, 0 in y ⇒ L∞ distance 3. The pair
        // intersects the inflated partner exactly when eps ≥ 3.
        let a = rigid(0.0, 0.0, 1.0, 0.0, 0.0, 0.0);
        let b = rigid(4.0, 0.0, 1.0, 0.0, 0.0, 0.0);
        assert!(a.intersect_interval(&b.inflate(3.0), 0.0, 10.0).is_some());
        assert!(a.intersect_interval(&b.inflate(2.9), 0.0, 10.0).is_none());
    }

    #[test]
    fn speed_sum_per_dimension() {
        let m = MovingRect::new([0.0; 2], [1.0; 2], [-2.0, 0.5], [3.0, 1.0], 0.0);
        assert_eq!(m.speed_sum(0), 5.0);
        assert_eq!(m.speed_sum(1), 1.5);
    }
}
