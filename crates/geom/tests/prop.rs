//! Property tests for the geometry kernel: the analytic interval algebra
//! must agree with brute-force sampling of the rectangles' positions.

use cij_geom::{MovingRect, Rect, TimeInterval, INFINITE_TIME};
use proptest::prelude::*;

const EPS: f64 = 1e-7;

fn arb_rigid() -> impl Strategy<Value = MovingRect> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.01f64..20.0,
        0.01f64..20.0,
        -5.0f64..5.0,
        -5.0f64..5.0,
        0.0f64..10.0,
    )
        .prop_map(|(x, y, w, h, vx, vy, t_ref)| {
            MovingRect::rigid(Rect::new([x, y], [x + w, y + h]), [vx, vy], t_ref)
        })
}

fn arb_expanding() -> impl Strategy<Value = MovingRect> {
    (arb_rigid(), 0.0f64..3.0, 0.0f64..3.0).prop_map(|(m, gx, gy)| {
        MovingRect::new(
            m.lo,
            m.hi,
            [m.vlo[0] - gx, m.vlo[1] - gy],
            [m.vhi[0] + gx, m.vhi[1] + gy],
            m.t_ref,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analytic intersection interval must agree with point sampling:
    /// inside the interval (away from the ends) rectangles intersect, and
    /// outside it (away from the ends) they do not.
    #[test]
    fn intersect_interval_matches_sampling(a in arb_rigid(), b in arb_rigid()) {
        let window = (10.0, 200.0);
        let result = a.intersect_interval(&b, window.0, window.1);
        match result {
            Some(TimeInterval { start, end }) => {
                prop_assert!(start >= window.0 - EPS && end <= window.1 + EPS);
                // Sample strictly inside.
                if end - start > 4.0 * EPS {
                    for frac in [0.25, 0.5, 0.75] {
                        let t = start + (end - start) * frac;
                        prop_assert!(a.intersects_at(&b, t), "inside t={t}");
                    }
                }
                // Sample outside (before start / after end) within window.
                if start - window.0 > 1e-3 {
                    prop_assert!(!a.intersects_at(&b, start - 1e-3));
                }
                if window.1 - end > 1e-3 {
                    prop_assert!(!a.intersects_at(&b, end + 1e-3));
                }
            }
            None => {
                // Sample the whole window: never intersecting.
                for k in 0..40 {
                    let t = window.0 + (window.1 - window.0) * (k as f64 + 0.5) / 40.0;
                    prop_assert!(!a.intersects_at(&b, t), "t={t} should not intersect");
                }
            }
        }
    }

    /// Unbounded windows behave like a very large bounded window.
    #[test]
    fn unbounded_matches_large_window(a in arb_rigid(), b in arb_rigid()) {
        let unb = a.intersect_interval(&b, 10.0, INFINITE_TIME);
        let big = a.intersect_interval(&b, 10.0, 1e12);
        match (unb, big) {
            (None, None) => {}
            (Some(u), Some(g)) => {
                prop_assert!((u.start - g.start).abs() < EPS);
                prop_assert!(u.end == g.end || (u.end == INFINITE_TIME && g.end == 1e12));
            }
            // An interval starting beyond 1e12 is astronomically unlikely
            // with bounded speeds but tolerate it.
            (Some(u), None) => prop_assert!(u.start > 1e12 - 1.0),
            (None, Some(_)) => prop_assert!(false, "bounded found, unbounded missed"),
        }
    }

    /// A moving union must bound its members at every sampled future time,
    /// including expanding (node-style) members.
    #[test]
    fn union_bounds_members(a in arb_expanding(), b in arb_expanding()) {
        let u = a.union_moving(&b);
        let t0 = u.t_ref;
        for k in 0..20 {
            let t = t0 + k as f64 * 7.3;
            // Rebasing costs a few ulps, hence the eps-tolerant check.
            prop_assert!(u.at(t).contains_rect_eps(&a.at(t), 1e-9), "a escapes at t={t}");
            prop_assert!(u.at(t).contains_rect_eps(&b.at(t), 1e-9), "b escapes at t={t}");
        }
    }

    /// Exact area integral agrees with numeric quadrature.
    #[test]
    fn area_integral_matches_numeric(m in arb_expanding(), span in 1.0f64..50.0) {
        let t0 = m.t_ref;
        let t1 = t0 + span;
        let exact = m.area_integral(t0, t1);
        let steps = 2000;
        let h = span / steps as f64;
        let mut numeric = 0.0;
        for k in 0..steps {
            numeric += m.area_at(t0 + (k as f64 + 0.5) * h) * h;
        }
        let tol = 1e-6 * (1.0 + exact.abs());
        prop_assert!((exact - numeric).abs() < tol.max(1e-3), "exact={exact} num={numeric}");
    }

    /// Exact overlap integral agrees with numeric quadrature.
    #[test]
    fn overlap_integral_matches_numeric(a in arb_rigid(), b in arb_rigid(), span in 1.0f64..40.0) {
        let t0 = a.t_ref.max(b.t_ref);
        let t1 = t0 + span;
        let exact = a.overlap_integral(&b, t0, t1);
        let steps = 4000;
        let h = span / steps as f64;
        let mut numeric = 0.0;
        for k in 0..steps {
            let t = t0 + (k as f64 + 0.5) * h;
            numeric += a.at(t).overlap_area(&b.at(t)) * h;
        }
        let tol = (1e-4 * (1.0 + exact.abs())).max(5e-2);
        prop_assert!((exact - numeric).abs() < tol, "exact={exact} num={numeric}");
    }

    /// Influence time is consistent with the status flip it predicts.
    #[test]
    fn influence_time_is_a_status_change(a in arb_rigid(), b in arb_rigid()) {
        let t_c = 10.0;
        let inf = a.influence_time(&b, t_c);
        if inf.is_finite() && inf > t_c + 1e-3 {
            let before =
                a.intersects_at(&b, (t_c + inf) / 2.0) || a.intersects_at(&b, inf - 1e-4);
            let after = a.intersects_at(&b, inf + 1e-4);
            // Status just before vs just after the influence time differs
            // (allowing for grazing contacts where the flip is momentary).
            prop_assert!(before != after || a.intersects_at(&b, inf),
                "no status change at influence time {inf}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exact interval min/max distance vs dense sampling.
    #[test]
    fn interval_distance_matches_sampling(a in arb_rigid(), b in arb_rigid(), span in 1.0f64..60.0) {
        let t0 = a.t_ref.max(b.t_ref);
        let t1 = t0 + span;
        let (min_exact, t_min) = a.min_dist_sq_interval(&b, t0, t1);
        let max_exact = a.max_dist_sq_interval(&b, t0, t1);
        prop_assert!((t0..=t1).contains(&t_min));
        // The witness attains the reported minimum.
        prop_assert!((a.dist_sq_at(&b, t_min) - min_exact).abs() < 1e-6 * (1.0 + min_exact));
        // Dense sampling never beats the exact extrema.
        let steps = 400;
        for k in 0..=steps {
            let t = t0 + (t1 - t0) * k as f64 / steps as f64;
            let d = a.dist_sq_at(&b, t);
            prop_assert!(d >= min_exact - 1e-6 * (1.0 + d), "sample below min at t={t}");
            prop_assert!(d <= max_exact + 1e-6 * (1.0 + d), "sample above max at t={t}");
        }
    }

    /// Distance is zero exactly when the pair intersects in the window.
    #[test]
    fn zero_distance_iff_intersecting(a in arb_rigid(), b in arb_rigid()) {
        let (t0, t1) = (0.0, 50.0);
        let (min_d2, _) = a.min_dist_sq_interval(&b, t0, t1);
        let intersects = a.intersect_interval(&b, t0, t1).is_some();
        if intersects {
            prop_assert_eq!(min_d2, 0.0);
        } else {
            prop_assert!(min_d2 > 0.0, "disjoint pair reported distance 0");
        }
    }
}

/// Pinned regression, promoted from `prop.proptest-regressions` so it
/// always runs (the offline proptest shim does not replay recorded
/// shrinks): a pair with **mismatched `t_ref`s** — one rectangle sweeping
/// down from `t_ref = 0`, the other stationary and referenced at
/// `t ≈ 8.275` — once made `intersect_interval` disagree with sampling,
/// because positions were compared without rebasing to a common
/// reference time. This is the shrunken witness from
/// `intersect_interval_matches_sampling`, checked with the same body.
#[test]
fn regression_mismatched_t_ref_interval_matches_sampling() {
    let a = MovingRect::rigid(
        Rect::new([0.0, 0.0], [0.01, 0.01]),
        [0.0, -4.585113918007131],
        0.0,
    );
    let b = MovingRect::rigid(
        Rect::new([0.0, 0.0], [0.01, 0.01]),
        [0.0, 0.0],
        8.275216375486172,
    );
    assert_eq!(a.t_ref, 0.0);
    assert_eq!(b.t_ref, 8.275216375486172);

    let window = (10.0, 200.0);
    match a.intersect_interval(&b, window.0, window.1) {
        Some(TimeInterval { start, end }) => {
            assert!(start >= window.0 - EPS && end <= window.1 + EPS);
            if end - start > 4.0 * EPS {
                for frac in [0.25, 0.5, 0.75] {
                    let t = start + (end - start) * frac;
                    assert!(a.intersects_at(&b, t), "inside t={t}");
                }
            }
            if start - window.0 > 1e-3 {
                assert!(!a.intersects_at(&b, start - 1e-3));
            }
            if window.1 - end > 1e-3 {
                assert!(!a.intersects_at(&b, end + 1e-3));
            }
        }
        None => {
            for k in 0..40 {
                let t = window.0 + (window.1 - window.0) * (k as f64 + 0.5) / 40.0;
                assert!(!a.intersects_at(&b, t), "t={t} should not intersect");
            }
        }
    }
}
