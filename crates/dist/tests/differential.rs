//! The distributed correctness contract: a `StreamService` running a
//! [`DistCoordinator`] over loopback workers must emit a delta stream
//! **bit-identical** to one running the in-process [`ShardCoordinator`]
//! with the same policy — per-tick `advance_to` delta vectors, polled
//! subscriber outboxes (`Gap` markers included), and `result_at`
//! snapshots — for every partition policy × K ∈ {2, 4}, including runs
//! where a worker is killed mid-stream and restarts from its WAL, and
//! runs where the worker's WAL is lost and the coordinator resyncs it
//! by replaying its retained request history.

use std::path::PathBuf;
use std::sync::Arc;

use cij_core::{EngineConfig, MtbEngine};
use cij_dist::loopback::LoopbackHost;
use cij_dist::{joinable_pairs, Connector, DistConfig, DistCoordinator, EngineKind};
use cij_geom::Time;
use cij_shard::{
    HashPolicy, PartitionPolicy, ShardCoordinator, SpatialGridPolicy, VelocityBandPolicy,
};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{StreamConfig, StreamService, SubscriberId, SubscriptionFilter};
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    )
}

/// Short T_M so the run covers a full re-registration round, and the
/// velocity-skew mix so the band policy sees both classes.
fn skew_params(seed: u64) -> Params {
    Params {
        dataset_size: 100,
        distribution: Distribution::VelocitySkew,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        maximum_update_interval: 20.0,
        ..Params::default()
    }
}

/// Slow movers over a wider space so the K = 4 strip plan prunes pairs.
fn grid_params(seed: u64) -> Params {
    Params {
        max_speed: 1.0,
        space: 300.0,
        dataset_size: 150,
        ..skew_params(seed)
    }
}

fn engine_config(params: &Params) -> EngineConfig {
    EngineConfig {
        t_m: params.maximum_update_interval,
        ..EngineConfig::default()
    }
}

struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str, idx: usize) -> Self {
        let path =
            std::env::temp_dir().join(format!("cij-dist-{tag}-{idx}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// One durable loopback host per joinable shard pair of `policy`.
fn durable_hosts(
    policy: &dyn PartitionPolicy,
    tag: &str,
) -> (Vec<Arc<LoopbackHost>>, Vec<TempWal>) {
    let mut hosts = Vec::new();
    let mut wals = Vec::new();
    for (idx, _) in joinable_pairs(policy).into_iter().enumerate() {
        let wal = TempWal::new(tag, idx);
        hosts.push(LoopbackHost::durable(wal.0.clone()).expect("durable host"));
        wals.push(wal);
    }
    (hosts, wals)
}

/// The two services under comparison plus the shared workload, with the
/// loopback hosts exposed for fault injection.
struct Rig {
    oracle: StreamService,
    dist: StreamService,
    sub_oracle: SubscriberId,
    sub_dist: SubscriberId,
    workload: UpdateStream,
    hosts: Vec<Arc<LoopbackHost>>,
    _wals: Vec<TempWal>,
}

impl Rig {
    fn new(
        policy: Arc<dyn PartitionPolicy>,
        params: &Params,
        tag: &str,
        outbox_capacity: usize,
    ) -> Self {
        let (a, b) = generate_pair(params, 0.0);
        let stream_config = StreamConfig::builder()
            .engine(engine_config(params))
            .outbox_capacity(outbox_capacity)
            .build();

        let oracle_policy = policy.clone();
        let mut oracle =
            StreamService::new(stream_config.clone(), &a, &b, 0.0, &|cfg, a, b, now| {
                Ok(Box::new(ShardCoordinator::new(
                    pool(),
                    *cfg,
                    oracle_policy.clone(),
                    a,
                    b,
                    now,
                    &|pool, cfg, a, b, now| Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, now)?)),
                )?))
            })
            .expect("oracle service");

        let (hosts, wals) = durable_hosts(&*policy, tag);
        let dist_policy = policy.clone();
        let dist_hosts = hosts.clone();
        let mut dist = StreamService::new(stream_config, &a, &b, 0.0, &|cfg, a, b, now| {
            let connectors: Vec<Box<dyn Connector>> = dist_hosts
                .iter()
                .map(|h| Box::new(h.connector()) as Box<dyn Connector>)
                .collect();
            let dist_config = DistConfig {
                engine: EngineKind::Mtb,
                t_m: cfg.t_m,
                buckets_per_tm: cfg.buckets_per_tm,
                metrics: true,
                ..DistConfig::default()
            };
            Ok(Box::new(DistCoordinator::new(
                dist_config,
                dist_policy.clone(),
                connectors,
                a,
                b,
                now,
            )?))
        })
        .expect("dist service");

        let sub_oracle = oracle.subscribe(SubscriptionFilter::All).expect("sub");
        let sub_dist = dist.subscribe(SubscriptionFilter::All).expect("sub");
        let workload = UpdateStream::new(params, &a, &b, 0.0);
        Self {
            oracle,
            dist,
            sub_oracle,
            sub_dist,
            workload,
            hosts,
            _wals: wals,
        }
    }

    /// Drives both services through ticks `from..=to` on the shared
    /// workload, asserting the advance deltas, polled outbox items and
    /// result snapshots stay bit-identical. `poll_every` lets the gap
    /// test starve the outboxes identically on both sides.
    fn run_ticks(&mut self, from: u32, to: u32, poll_every: u32, label: &str) -> u64 {
        let mut gaps = 0u64;
        for tick in from..=to {
            let now = Time::from(tick);
            for u in self.workload.tick(now) {
                self.oracle.submit(u, now);
                self.dist.submit(u, now);
            }
            let d_oracle = self.oracle.advance_to(now).expect("oracle advance");
            let d_dist = self.dist.advance_to(now).expect("dist advance");
            assert_eq!(
                d_dist, d_oracle,
                "{label}: advance deltas diverged at t={now}"
            );

            if tick % poll_every == 0 {
                let o_items = self.oracle.poll(self.sub_oracle).unwrap_or_default();
                let d_items = self.dist.poll(self.sub_dist).unwrap_or_default();
                assert_eq!(d_items, o_items, "{label}: outboxes diverged at t={now}");
                gaps += o_items
                    .iter()
                    .filter(|i| matches!(i, cij_stream::OutboxItem::Gap { .. }))
                    .count() as u64;
            }
            assert_eq!(
                self.dist.result_at(now),
                self.oracle.result_at(now),
                "{label}: result snapshots diverged at t={now}"
            );
        }
        gaps
    }
}

#[test]
fn loopback_stream_bit_identical_across_policies_and_k() {
    let cases: Vec<(&str, usize, Params, Arc<dyn PartitionPolicy>)> = {
        let mut v: Vec<(&str, usize, Params, Arc<dyn PartitionPolicy>)> = Vec::new();
        for k in [2usize, 4] {
            let p = skew_params(60 + k as u64);
            v.push((
                "hash",
                k,
                p,
                Arc::new(HashPolicy::new(k)) as Arc<dyn PartitionPolicy>,
            ));
            let p = skew_params(70 + k as u64);
            let policy = Arc::new(VelocityBandPolicy::new(k, p.max_speed));
            v.push(("velocity", k, p, policy));
            let p = grid_params(80 + k as u64);
            let policy = Arc::new(SpatialGridPolicy::for_horizon(
                k,
                p.space,
                p.max_speed,
                p.maximum_update_interval,
                p.object_side(),
            ));
            v.push(("grid", k, p, policy));
        }
        v
    };

    for (name, k, params, policy) in cases {
        let label = format!("{name}-k{k}");
        let workers = joinable_pairs(&*policy).len();
        let mut rig = Rig::new(policy, &params, &label, 1024);
        assert_eq!(rig.hosts.len(), workers);

        // First half: healthy run.
        rig.run_ticks(1, 10, 1, &label);

        // Crash one worker process mid-stream. Its WAL survives, so the
        // supervisor restart replays the journal and the coordinator
        // resyncs nothing.
        let victim = workers / 2;
        rig.hosts[victim].kill();

        // Second half: the kill must be invisible in the stream.
        rig.run_ticks(11, 20, 1, &label);
        assert_eq!(rig.hosts[victim].kills(), 1, "{label}");
        assert_eq!(rig.hosts[victim].restarts(), 1, "{label}: no restart");

        let snap = rig.dist.metrics_snapshot();
        assert!(
            snap.counter("dist.rpc.errors").unwrap_or(0) >= 1,
            "{label}: the kill should surface as a channel error"
        );
        assert!(
            snap.counter("dist.reconnects").unwrap_or(0) >= 1,
            "{label}: expected a reconnect after the kill"
        );
        assert_eq!(
            snap.counter("dist.resyncs").unwrap_or(0),
            0,
            "{label}: a WAL-intact restart must not need a history resync"
        );
    }
}

#[test]
fn wal_loss_forces_full_history_resync() {
    let params = skew_params(90);
    let policy = Arc::new(VelocityBandPolicy::new(2, params.max_speed));
    let mut rig = Rig::new(policy, &params, "walloss", 1024);

    rig.run_ticks(1, 8, 1, "walloss");

    // Lose a whole machine: worker, outbox and WAL. The restarted
    // worker reports zero durable progress, so the coordinator must
    // replay its entire retained history for that slot.
    rig.hosts[1].kill_and_lose_wal();

    rig.run_ticks(9, 20, 1, "walloss");
    assert_eq!(rig.hosts[1].restarts(), 1);

    let snap = rig.dist.metrics_snapshot();
    assert!(
        snap.counter("dist.resyncs").unwrap_or(0) >= 1,
        "losing the WAL must trigger a history resync"
    );
    assert!(
        snap.counter("dist.replayed_requests").unwrap_or(0) > 0,
        "the resync must actually replay requests"
    );
    assert!(snap.counter("dist.reconnects").unwrap_or(0) >= 1);
}

#[test]
fn gap_markers_match_under_tiny_outboxes() {
    let params = skew_params(91);
    let policy = Arc::new(HashPolicy::new(2));
    // A 3-item outbox polled every 5 ticks overflows on both sides in
    // exactly the same places, so even the loss markers are identical.
    let mut rig = Rig::new(policy, &params, "gaps", 3);
    let gaps = rig.run_ticks(1, 25, 5, "gaps");
    assert!(gaps > 0, "run never overflowed an outbox: gaps unexercised");
}
