//! Multi-process smoke: two real `shard_worker` processes over TCP,
//! one killed (SIGKILL) mid-run and respawned on a fresh port from its
//! surviving WAL. The merged stream must stay bit-identical to the
//! in-process shard coordinator throughout, and the coordinator's
//! metrics must show the reconnect happened without a history resync.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use cij_core::{EngineConfig, MtbEngine};
use cij_dist::tcp::TcpConnector;
use cij_dist::{joinable_pairs, Connector, DistConfig, DistCoordinator, EngineKind};
use cij_geom::{MovingRect, Time};
use cij_shard::{PartitionPolicy, ShardCoordinator};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{StreamConfig, StreamService, SubscriptionFilter};
use cij_tpr::ObjectId;
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

/// Id-hash placement whose join plan keeps only the diagonal, so K = 2
/// needs exactly two workers. Pruning off-diagonal pairs is *unsound*
/// for the join itself — but both sides of the differential use the
/// same plan, so parity still pins the transport and recovery paths.
struct DiagonalPolicy;

impl PartitionPolicy for DiagonalPolicy {
    fn name(&self) -> &'static str {
        "diagonal"
    }

    fn shard_count(&self) -> usize {
        2
    }

    fn shard_of(&self, id: ObjectId, _mbr: &MovingRect) -> usize {
        (id.0 % 2) as usize
    }

    fn joinable(&self, shard_a: usize, shard_b: usize) -> bool {
        shard_a == shard_b
    }
}

/// One spawned worker process, killed on drop so a failing test does
/// not leak children.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    fn spawn(wal: &Path) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_shard_worker"))
            .args(["--listen", "127.0.0.1:0", "--wal"])
            .arg(wal)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn shard_worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string();
        Self { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

struct TempWal(PathBuf);

impl TempWal {
    fn new(idx: usize) -> Self {
        let path = std::env::temp_dir().join(format!(
            "cij-dist-tcp-smoke-{idx}-{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    )
}

#[test]
fn two_processes_survive_a_kill_with_bit_identical_streams() {
    let params = Params {
        dataset_size: 80,
        distribution: Distribution::VelocitySkew,
        seed: 92,
        space: 200.0,
        object_size_pct: 1.0,
        maximum_update_interval: 20.0,
        ..Params::default()
    };
    let engine_cfg = EngineConfig {
        t_m: params.maximum_update_interval,
        ..EngineConfig::default()
    };
    let policy: Arc<dyn PartitionPolicy> = Arc::new(DiagonalPolicy);
    assert_eq!(joinable_pairs(&*policy), vec![(0, 0), (1, 1)]);

    let (a, b) = generate_pair(&params, 0.0);
    let stream_config = StreamConfig::builder().engine(engine_cfg).build();

    let oracle_policy = policy.clone();
    let mut oracle = StreamService::new(stream_config.clone(), &a, &b, 0.0, &|cfg, a, b, now| {
        Ok(Box::new(ShardCoordinator::new(
            pool(),
            *cfg,
            oracle_policy.clone(),
            a,
            b,
            now,
            &|pool, cfg, a, b, now| Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, now)?)),
        )?))
    })
    .expect("oracle service");

    let wals: Vec<TempWal> = (0..2).map(TempWal::new).collect();
    let mut procs: Vec<WorkerProc> = wals.iter().map(|w| WorkerProc::spawn(&w.0)).collect();
    let connectors: Vec<TcpConnector> = procs
        .iter()
        .map(|p| TcpConnector::new(p.addr.clone(), Duration::from_secs(10)))
        .collect();

    let dist_policy = policy.clone();
    let dist_connectors = connectors.clone();
    let mut dist = StreamService::new(stream_config, &a, &b, 0.0, &|cfg, a, b, now| {
        let boxed: Vec<Box<dyn Connector>> = dist_connectors
            .iter()
            .map(|c| Box::new(c.clone()) as Box<dyn Connector>)
            .collect();
        let dist_config = DistConfig {
            engine: EngineKind::Mtb,
            t_m: cfg.t_m,
            buckets_per_tm: cfg.buckets_per_tm,
            metrics: true,
            ..DistConfig::default()
        };
        Ok(Box::new(DistCoordinator::new(
            dist_config,
            dist_policy.clone(),
            boxed,
            a,
            b,
            now,
        )?))
    })
    .expect("dist service");

    let sub_oracle = oracle.subscribe(SubscriptionFilter::All).expect("sub");
    let sub_dist = dist.subscribe(SubscriptionFilter::All).expect("sub");
    let mut workload = UpdateStream::new(&params, &a, &b, 0.0);

    let run = |oracle: &mut StreamService,
               dist: &mut StreamService,
               workload: &mut UpdateStream,
               from: u32,
               to: u32| {
        for tick in from..=to {
            let now = Time::from(tick);
            for u in workload.tick(now) {
                oracle.submit(u, now);
                dist.submit(u, now);
            }
            let d_oracle = oracle.advance_to(now).expect("oracle advance");
            let d_dist = dist.advance_to(now).expect("dist advance");
            assert_eq!(d_dist, d_oracle, "advance deltas diverged at t={now}");
            assert_eq!(
                dist.poll(sub_dist).unwrap_or_default(),
                oracle.poll(sub_oracle).unwrap_or_default(),
                "outboxes diverged at t={now}"
            );
            assert_eq!(
                dist.result_at(now),
                oracle.result_at(now),
                "result snapshots diverged at t={now}"
            );
        }
    };

    run(&mut oracle, &mut dist, &mut workload, 1, 6);

    // SIGKILL worker 1 mid-run and respawn it from its WAL on a fresh
    // port; the retargeted connector is the supervisor's only repair.
    procs[1].kill();
    procs[1] = WorkerProc::spawn(&wals[1].0);
    connectors[1].retarget(procs[1].addr.clone());

    run(&mut oracle, &mut dist, &mut workload, 7, 14);

    let snap = dist.metrics_snapshot();
    assert!(
        snap.counter("dist.reconnects").unwrap_or(0) >= 1,
        "the kill should force at least one reconnect"
    );
    assert_eq!(
        snap.counter("dist.resyncs").unwrap_or(0),
        0,
        "a WAL-intact restart must not need a history resync"
    );
    assert!(snap.counter("dist.rpc.calls").unwrap_or(0) > 0);
}
