//! `cij-dist` — coordinator/worker distributed deployment of the
//! sharded continuous intersection join.
//!
//! `cij-shard` showed that the paper's join splits cleanly into K×K
//! state-disjoint shard-pair engines whose merged answer equals the
//! single engine's. This crate moves those engines out of process:
//!
//! - a [`ShardWorker`] owns one shard-pair [`ContinuousJoinEngine`](cij_core::ContinuousJoinEngine),
//!   journals every mutating request to its own WAL *before* applying
//!   it, and keeps a response outbox keyed by sequence number — so it
//!   applies each request exactly once under at-least-once delivery and
//!   rebuilds both engine and outbox on restart;
//! - a [`DistCoordinator`] routes object updates through the same
//!   [`PartitionPolicy`](cij_shard::PartitionPolicy)/row-column fan-out
//!   as the in-process shard coordinator, drives every worker in
//!   lockstep with one [`Step`](protocol::Request::Step) per tick, and
//!   merges the workers' drained result changes — implementing
//!   `ContinuousJoinEngine` itself, so it wraps in the same
//!   `StreamService` as any local engine;
//! - the [`Transport`] seam is pluggable: an in-process [`loopback`]
//!   with deterministic kill/restart fault injection for the
//!   differential suite, and a length+CRC32-framed [`tcp`] transport
//!   (plus the `shard_worker` binary) for real multi-process runs.
//!
//! The headline property, pinned by the crate's differential tests: the
//! merged delta stream a `StreamService` emits over a
//! `DistCoordinator` is **bit-identical** to the one it emits over a
//! single-process `ShardCoordinator` with the same policy — including
//! runs where a worker is killed mid-stream and recovers from its WAL,
//! and runs where the worker's WAL is lost and the coordinator resyncs
//! it by replaying its retained request history.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod coordinator;
mod error;
pub mod loopback;
pub mod protocol;
pub mod tcp;
mod transport;
mod worker;

pub use coordinator::{joinable_pairs, DistConfig, DistCoordinator};
pub use error::{DistError, DistResult};
pub use protocol::{EngineKind, Request, Response, ShardOp};
pub use transport::{Connector, Transport};
pub use worker::{build_engine, ShardWorker};
