//! The pluggable transport seam between coordinator and workers.

use crate::error::DistResult;
use crate::protocol::{Request, Response};

/// One established coordinator→worker channel, carrying one
/// request/response exchange at a time (the protocol is strictly
/// synchronous — the coordinator is each worker's only client).
///
/// A transport does not retry, reconnect or resync; it reports faults
/// and the coordinator decides. [`Err`] from [`call`](Self::call) means
/// the channel is dead and must be discarded.
pub trait Transport: Send {
    /// Sends `req` and waits for the worker's response.
    ///
    /// # Errors
    /// [`DistError::Io`](crate::DistError::Io) when the channel broke
    /// mid-exchange, [`DistError::Protocol`](crate::DistError::Protocol)
    /// when the peer's bytes failed validation.
    fn call(&mut self, req: &Request) -> DistResult<Response>;
}

/// Establishes [`Transport`]s to one worker. The coordinator keeps a
/// connector per worker slot and redials it — with bounded backoff —
/// whenever the current transport dies.
pub trait Connector: Send + Sync {
    /// Dials the worker.
    ///
    /// # Errors
    /// [`DistError`](crate::DistError) when the worker is not (yet)
    /// reachable; the coordinator will retry within its backoff budget.
    fn connect(&self) -> DistResult<Box<dyn Transport>>;

    /// A human-readable endpoint description for diagnostics.
    fn describe(&self) -> String;
}
