//! The shard-worker process: one WAL-backed [`ShardWorker`] served over
//! TCP until a `Shutdown` request arrives.
//!
//! ```text
//! shard_worker [--listen ADDR] [--wal PATH]
//! ```
//!
//! `--listen` defaults to `127.0.0.1:0` (an OS-assigned port). The
//! bound address is announced on stdout as `LISTENING <addr>` so a
//! supervisor — or the multi-process smoke test — can scrape it.
//! Without `--wal` the worker is ephemeral: a crash loses everything
//! and the coordinator resyncs it from scratch.

use std::net::TcpListener;
use std::path::PathBuf;

use cij_dist::{tcp, ShardWorker};

struct Options {
    listen: String,
    wal: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        listen: "127.0.0.1:0".to_string(),
        wal: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                options.listen = args.next().ok_or("--listen needs an address")?;
            }
            "--wal" => {
                options.wal = Some(PathBuf::from(args.next().ok_or("--wal needs a path")?));
            }
            "--help" | "-h" => {
                return Err("usage: shard_worker [--listen ADDR] [--wal PATH]".into())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(options)
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut worker = match &options.wal {
        Some(path) => match ShardWorker::open(path) {
            Ok(w) => {
                if w.recovered() > 0 {
                    eprintln!(
                        "recovered {} journaled requests (seq {})",
                        w.recovered(),
                        w.last_applied()
                    );
                }
                w
            }
            Err(e) => {
                eprintln!("cannot open WAL {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => ShardWorker::ephemeral(),
    };

    let listener = match TcpListener::bind(&options.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", options.listen);
            std::process::exit(1);
        }
    };
    match listener.local_addr() {
        Ok(addr) => {
            // The supervisor contract: announce the bound address.
            println!("LISTENING {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            std::process::exit(1);
        }
    }

    if let Err(e) = tcp::serve(&listener, &mut worker) {
        eprintln!("serve loop failed: {e}");
        std::process::exit(1);
    }
}
