//! The shard worker: one shard-pair engine, a request WAL, and a
//! response outbox, behind any [`Transport`](crate::Transport).
//!
//! A worker is a deterministic request-application machine. Mutating
//! requests ([`Request::seq`] = `Some`) are journaled to the worker's
//! WAL *before* they touch the engine; restart recovery replays the
//! durable prefix through the very same dispatch path, rebuilding the
//! engine **and** the outbox — so a restarted worker answers a resent
//! request with byte-identical content, which is what keeps the
//! coordinator's merged delta stream bit-identical across worker
//! crashes. A request whose sequence number was already applied is
//! answered from the outbox without re-execution (exactly-once apply
//! over at-least-once delivery).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine, NaiveEngine, TcEngine};
use cij_geom::Time;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore, Wal};
use cij_tpr::TprResult;
use cij_workload::MovingObject;

use crate::error::{DistError, DistResult};
use crate::protocol::{EngineKind, Request, Response, ShardOp};

/// Builds a worker's engine from the parameters shipped in
/// [`Request::Init`]. Each worker owns a private in-memory page store —
/// the distributed deployment's point is that workers share *nothing*.
pub fn build_engine(
    kind: EngineKind,
    t_m: Time,
    buckets_per_tm: u32,
    set_a: &[MovingObject],
    set_b: &[MovingObject],
    start: Time,
) -> TprResult<Box<dyn ContinuousJoinEngine + Send>> {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(1024),
    );
    let config = EngineConfig::builder()
        .t_m(t_m)
        .buckets_per_tm(buckets_per_tm)
        .build();
    Ok(match kind {
        EngineKind::Naive => Box::new(NaiveEngine::new(pool, config, set_a, set_b, start)?),
        EngineKind::Tc => Box::new(TcEngine::new(pool, config, set_a, set_b, start)?),
        EngineKind::Mtb => Box::new(MtbEngine::new(pool, config, set_a, set_b, start)?),
    })
}

/// One worker: engine, WAL, outbox (see the module docs).
pub struct ShardWorker {
    engine: Option<Box<dyn ContinuousJoinEngine + Send>>,
    wal: Option<Wal>,
    last_applied: u64,
    outbox: BTreeMap<u64, Response>,
    /// Mutating requests applied since construction (replayed records
    /// included) — exported to observers, not used for control flow.
    applied: u64,
    /// Records replayed from the WAL at construction.
    recovered: u64,
}

impl ShardWorker {
    /// A worker with no durability: a crash loses everything and the
    /// coordinator must resync it from scratch.
    #[must_use]
    pub fn ephemeral() -> Self {
        Self {
            engine: None,
            wal: None,
            last_applied: 0,
            outbox: BTreeMap::new(),
            applied: 0,
            recovered: 0,
        }
    }

    /// Opens (or creates) a durable worker at `wal_path`. If the WAL
    /// already holds records — the worker is restarting after a crash —
    /// the durable prefix is replayed through the normal dispatch path,
    /// rebuilding engine, outbox and high-water sequence number. A torn
    /// tail record is dropped (it was never acknowledged; the
    /// coordinator resends it).
    ///
    /// # Errors
    /// [`DistError`] when the WAL cannot be opened or a durable record
    /// fails to decode (version mismatch included).
    pub fn open(wal_path: &Path) -> DistResult<Self> {
        let (wal, recovery) = Wal::open(wal_path).map_err(DistError::from)?;
        let mut worker = Self {
            engine: None,
            wal: None, // journaling disabled during replay
            last_applied: 0,
            outbox: BTreeMap::new(),
            applied: 0,
            recovered: 0,
        };
        for record in &recovery.records {
            let req = Request::decode(record)?;
            worker.handle(&req);
            worker.recovered += 1;
        }
        worker.wal = Some(wal);
        Ok(worker)
    }

    /// Highest applied sequence number (0 = fresh).
    #[must_use]
    pub fn last_applied(&self) -> u64 {
        self.last_applied
    }

    /// Mutating requests applied since construction.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Records replayed from the WAL at construction.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Cached responses awaiting coordinator acknowledgement.
    #[must_use]
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Dispatches one request. Never panics and never returns transport
    /// errors — every failure is a [`Response::Fail`] so the peer can
    /// tell engine trouble from connection trouble.
    pub fn handle(&mut self, req: &Request) -> Response {
        match req.seq() {
            None => self.handle_readonly(req),
            Some(seq) => {
                if seq <= self.last_applied {
                    return self.outbox.get(&seq).cloned().unwrap_or(Response::Fail {
                        message: format!("sequence {seq} already applied and its response pruned"),
                    });
                }
                if let Some(wal) = &mut self.wal {
                    let journal = wal.append(&req.encode()).and_then(|_| wal.sync());
                    if let Err(e) = journal {
                        return Response::Fail {
                            message: format!("journal write failed: {e}"),
                        };
                    }
                }
                let resp = self.apply(req, seq);
                self.last_applied = seq;
                self.applied += 1;
                self.outbox.insert(seq, resp.clone());
                if let Request::Step { ack_through, .. } = req {
                    // Everything at or below `ack_through` was consumed
                    // by the coordinator; it will never be re-asked.
                    self.outbox = self.outbox.split_off(&(ack_through + 1));
                }
                resp
            }
        }
    }

    fn handle_readonly(&mut self, req: &Request) -> Response {
        match req {
            Request::Hello => Response::HelloAck {
                last_applied: self.last_applied,
            },
            Request::PairStatusAt { pair, t } => Response::Status(
                self.engine
                    .as_ref()
                    .map(|e| e.pair_status_at(*pair, *t))
                    .unwrap_or_default(),
            ),
            Request::ResultAt { t } => Response::Pairs(
                self.engine
                    .as_ref()
                    .map(|e| e.result_at(*t))
                    .unwrap_or_default(),
            ),
            Request::Counters => Response::CountersAck(
                self.engine
                    .as_ref()
                    .map(|e| e.counters())
                    .unwrap_or_default(),
            ),
            Request::Ping { nonce } => Response::Pong { nonce: *nonce },
            Request::Shutdown => Response::Bye,
            _ => Response::Fail {
                message: format!("request {req:?} reached the read-only path"),
            },
        }
    }

    /// Applies one journaled request. Engine errors become
    /// [`Response::Fail`] and are still recorded in the outbox — the
    /// application is deterministic, so a replay or resend reproduces
    /// the same failure instead of silently diverging.
    fn apply(&mut self, req: &Request, seq: u64) -> Response {
        match req {
            Request::Init {
                engine,
                t_m,
                buckets_per_tm,
                set_a,
                set_b,
                start,
                ..
            } => match build_engine(*engine, *t_m, *buckets_per_tm, set_a, set_b, *start) {
                Ok(e) => {
                    self.engine = Some(e);
                    Response::Ack { seq }
                }
                Err(e) => Response::Fail {
                    message: e.to_string(),
                },
            },
            Request::Track { .. } => match self.engine.as_mut() {
                Some(e) => {
                    e.enable_delta_tracking();
                    Response::Ack { seq }
                }
                None => Response::Fail {
                    message: "track before init".into(),
                },
            },
            Request::Start { now, .. } => match self.engine.as_mut() {
                Some(e) => match e.run_initial_join(*now) {
                    Ok(()) => Response::Ack { seq },
                    Err(e) => Response::Fail {
                        message: e.to_string(),
                    },
                },
                None => Response::Fail {
                    message: "start before init".into(),
                },
            },
            Request::Step { now, ops, .. } => match self.engine.as_mut() {
                Some(e) => match Self::step(e.as_mut(), *now, ops) {
                    Ok(changes) => Response::StepAck { seq, changes },
                    Err(e) => Response::Fail {
                        message: e.to_string(),
                    },
                },
                None => Response::Fail {
                    message: "step before init".into(),
                },
            },
            Request::Immediate { now, op, .. } => match self.engine.as_mut() {
                Some(e) => match Self::apply_op(e.as_mut(), op, *now) {
                    Ok(()) => Response::Ack { seq },
                    Err(e) => Response::Fail {
                        message: e.to_string(),
                    },
                },
                None => Response::Fail {
                    message: "immediate op before init".into(),
                },
            },
            _ => Response::Fail {
                message: format!("request {req:?} reached the mutating path"),
            },
        }
    }

    /// One tick, in exactly the single-process service order: advance
    /// the clock, apply the ops, garbage-collect, drain the changes.
    fn step(
        engine: &mut dyn ContinuousJoinEngine,
        now: Time,
        ops: &[ShardOp],
    ) -> TprResult<Option<Vec<cij_core::PairKey>>> {
        engine.advance_time(now)?;
        for op in ops {
            Self::apply_op(engine, op, now)?;
        }
        engine.gc(now);
        Ok(engine.take_result_changes())
    }

    fn apply_op(engine: &mut dyn ContinuousJoinEngine, op: &ShardOp, now: Time) -> TprResult<()> {
        match op {
            ShardOp::Apply(u) => engine.apply_update(u, now),
            ShardOp::Insert { set, id, mbr } => engine.insert_object(*set, *id, *mbr, now),
            ShardOp::Remove {
                set,
                id,
                old_mbr,
                last_update,
            } => engine.remove_object(*set, *id, old_mbr, *last_update, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::{MovingRect, Rect};
    use cij_tpr::ObjectId;
    use cij_workload::SetTag;

    fn obj(id: u64, x: f64) -> MovingObject {
        MovingObject {
            id: ObjectId(id),
            mbr: MovingRect::stationary(Rect::new([x, 0.0], [x + 1.0, 1.0]), 0.0),
        }
    }

    fn init(seq: u64) -> Request {
        Request::Init {
            seq,
            engine: EngineKind::Mtb,
            t_m: 20.0,
            buckets_per_tm: 4,
            set_a: vec![obj(1, 0.0)],
            set_b: vec![obj(2, 0.5)],
            start: 0.0,
        }
    }

    #[test]
    fn duplicate_sequence_numbers_are_served_from_the_outbox() {
        let mut worker = ShardWorker::ephemeral();
        assert_eq!(worker.handle(&init(1)), Response::Ack { seq: 1 });
        assert_eq!(
            worker.handle(&Request::Track { seq: 2 }),
            Response::Ack { seq: 2 }
        );
        assert_eq!(
            worker.handle(&Request::Start { seq: 3, now: 0.0 }),
            Response::Ack { seq: 3 }
        );
        let step = Request::Step {
            seq: 4,
            now: 1.0,
            ops: vec![],
            ack_through: 0,
        };
        let first = worker.handle(&step);
        let Response::StepAck {
            seq: 4,
            changes: Some(changes),
        } = &first
        else {
            panic!("unexpected {first:?}");
        };
        assert_eq!(changes.len(), 1, "the initial join found (1, 2)");
        // Resending the same step must not re-apply it.
        assert_eq!(worker.handle(&step), first);
        assert_eq!(worker.applied(), 4);
        assert_eq!(worker.last_applied(), 4);
    }

    #[test]
    fn ack_through_prunes_the_outbox() {
        let mut worker = ShardWorker::ephemeral();
        worker.handle(&init(1));
        worker.handle(&Request::Track { seq: 2 });
        worker.handle(&Request::Start { seq: 3, now: 0.0 });
        assert_eq!(worker.outbox_len(), 3);
        worker.handle(&Request::Step {
            seq: 4,
            now: 1.0,
            ops: vec![],
            ack_through: 3,
        });
        assert_eq!(worker.outbox_len(), 1, "only the unacked step remains");
    }

    #[test]
    fn restart_replays_the_wal_and_keeps_cached_responses_identical() {
        let path = std::env::temp_dir().join(format!("cij-dist-worker-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut worker = ShardWorker::open(&path).expect("fresh worker");
        worker.handle(&init(1));
        worker.handle(&Request::Track { seq: 2 });
        worker.handle(&Request::Start { seq: 3, now: 0.0 });
        let step = Request::Step {
            seq: 4,
            now: 1.0,
            ops: vec![ShardOp::Apply(cij_workload::ObjectUpdate {
                id: ObjectId(1),
                set: SetTag::A,
                old_mbr: obj(1, 0.0).mbr,
                last_update: 0.0,
                new_mbr: MovingRect::stationary(Rect::new([0.1, 0.0], [1.1, 1.0]), 0.0),
            })],
            ack_through: 0,
        };
        let live_ack = worker.handle(&step);
        let live_result = worker.handle(&Request::ResultAt { t: 1.0 });
        drop(worker);

        let mut reborn = ShardWorker::open(&path).expect("recovered worker");
        assert_eq!(reborn.recovered(), 4);
        assert_eq!(reborn.last_applied(), 4);
        // The resent step is answered from the rebuilt outbox,
        // byte-identically to the pre-crash ack.
        assert_eq!(reborn.handle(&step), live_ack);
        assert_eq!(reborn.handle(&Request::ResultAt { t: 1.0 }), live_result);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_worker_that_lost_its_wal_reports_zero_progress() {
        let mut worker = ShardWorker::ephemeral();
        worker.handle(&init(1));
        let fresh = ShardWorker::ephemeral();
        assert_eq!(fresh.last_applied(), 0);
        assert_eq!(
            worker.handle(&Request::Hello),
            Response::HelloAck { last_applied: 1 }
        );
    }
}
