//! The in-process loopback transport: a [`ShardWorker`] behind a mutex,
//! with crash/restart control for deterministic fault-injection tests.
//!
//! A [`LoopbackHost`] plays the role of one worker *machine*: it owns
//! the worker state and its (optional) WAL path, and exposes
//! [`kill`](LoopbackHost::kill) — drop the in-memory state, keep the
//! WAL, like a process crash — and
//! [`kill_and_lose_wal`](LoopbackHost::kill_and_lose_wal) — drop both,
//! like losing the machine. Its connector acts as the supervisor:
//! dialing a killed host restarts the worker, recovering from the WAL
//! when one survives and reporting zero progress otherwise (which makes
//! the coordinator replay history from scratch).
//!
//! Messages still pass through the full protocol codec — every request
//! and response is encoded and decoded exactly as on the wire — so the
//! loopback differential suite exercises the same byte paths as TCP,
//! minus the socket.

use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{DistError, DistResult};
use crate::protocol::{Request, Response};
use crate::transport::{Connector, Transport};
use crate::worker::ShardWorker;

struct HostInner {
    worker: Option<ShardWorker>,
    wal_path: Option<PathBuf>,
    kills: u64,
    restarts: u64,
}

/// One simulated worker machine (see the module docs).
pub struct LoopbackHost {
    inner: Mutex<HostInner>,
}

impl LoopbackHost {
    /// A host whose worker keeps no WAL: any kill loses everything.
    #[must_use]
    pub fn ephemeral() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(HostInner {
                worker: Some(ShardWorker::ephemeral()),
                wal_path: None,
                kills: 0,
                restarts: 0,
            }),
        })
    }

    /// A host whose worker journals to `wal_path` and recovers from it
    /// on restart.
    ///
    /// # Errors
    /// [`DistError`] when the WAL cannot be opened.
    pub fn durable(wal_path: PathBuf) -> DistResult<Arc<Self>> {
        let worker = ShardWorker::open(&wal_path)?;
        Ok(Arc::new(Self {
            inner: Mutex::new(HostInner {
                worker: Some(worker),
                wal_path: Some(wal_path),
                kills: 0,
                restarts: 0,
            }),
        }))
    }

    /// Crashes the worker process: in-memory engine, outbox and
    /// sequence state are gone; the WAL (if any) survives.
    pub fn kill(&self) {
        let mut inner = self.inner.lock();
        inner.worker = None;
        inner.kills += 1;
    }

    /// Loses the whole machine: the worker *and* its WAL.
    pub fn kill_and_lose_wal(&self) {
        let mut inner = self.inner.lock();
        inner.worker = None;
        inner.kills += 1;
        if let Some(path) = &inner.wal_path {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Kills performed so far.
    #[must_use]
    pub fn kills(&self) -> u64 {
        self.inner.lock().kills
    }

    /// Supervisor restarts performed so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.inner.lock().restarts
    }

    /// A connector dialing this host.
    #[must_use]
    pub fn connector(self: &Arc<Self>) -> LoopbackConnector {
        LoopbackConnector {
            host: Arc::clone(self),
        }
    }
}

/// Dials a [`LoopbackHost`], restarting its worker if it was killed.
pub struct LoopbackConnector {
    host: Arc<LoopbackHost>,
}

impl Connector for LoopbackConnector {
    fn connect(&self) -> DistResult<Box<dyn Transport>> {
        let mut inner = self.host.inner.lock();
        if inner.worker.is_none() {
            // The supervisor restarts the process: durable workers
            // replay their WAL, ephemeral ones come back blank.
            inner.worker = Some(match &inner.wal_path {
                Some(path) => ShardWorker::open(path)?,
                None => ShardWorker::ephemeral(),
            });
            inner.restarts += 1;
        }
        drop(inner);
        Ok(Box::new(LoopbackTransport {
            host: Arc::clone(&self.host),
        }))
    }

    fn describe(&self) -> String {
        match &self.host.inner.lock().wal_path {
            Some(path) => format!("loopback({})", path.display()),
            None => "loopback(ephemeral)".into(),
        }
    }
}

/// A live channel to a loopback worker. Calls fail — like a socket —
/// while the host's worker is down; the coordinator discards the
/// channel on the first failure and redials through the connector.
pub struct LoopbackTransport {
    host: Arc<LoopbackHost>,
}

impl Transport for LoopbackTransport {
    fn call(&mut self, req: &Request) -> DistResult<Response> {
        // Full codec round-trip: the loopback carries the same bytes a
        // socket would.
        let encoded = req.encode();
        let decoded = Request::decode(&encoded)?;
        let mut inner = self.host.inner.lock();
        let Some(worker) = inner.worker.as_mut() else {
            return Err(DistError::Io(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "loopback worker killed",
            )));
        };
        let resp = worker.handle(&decoded);
        drop(inner);
        Response::decode(&resp.encode()).map_err(DistError::from)
    }
}
