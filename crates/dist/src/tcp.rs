//! The TCP transport: protocol payloads in length+CRC32 frames.
//!
//! Frame layout (mirroring the WAL's record framing, via the same
//! [`crc32`]):
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! The payload is a [`Request`]/[`Response`] encoding, which itself
//! opens with the protocol magic and version — so a peer from a foreign
//! build fails with a typed error before any field is interpreted.
//!
//! The server side ([`serve`]) accepts one connection at a time: the
//! coordinator is a worker's only client, and a reconnect simply shows
//! up as the next accepted connection.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use cij_storage::wal::crc32;
use cij_stream::WireError;
use parking_lot::Mutex;

use crate::error::{DistError, DistResult};
use crate::protocol::{Request, Response};
use crate::transport::{Connector, Transport};
use crate::worker::ShardWorker;

/// Frames larger than this are rejected as corrupt before allocation.
pub const MAX_FRAME_LEN: usize = 1 << 24; // 16 MiB

/// Writes one frame.
///
/// # Errors
/// Propagates the writer's I/O errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame and verifies its checksum.
///
/// # Errors
/// [`DistError::Io`] on socket errors (including EOF mid-frame);
/// [`DistError::Protocol`] on an oversized length or checksum mismatch.
pub fn read_frame(r: &mut impl Read) -> DistResult<Vec<u8>> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(DistError::Protocol(WireError::Corrupt(format!(
            "frame of {len} bytes exceeds MAX_FRAME_LEN"
        ))));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(DistError::Protocol(WireError::Corrupt(
            "frame checksum mismatch".into(),
        )));
    }
    Ok(payload)
}

/// Dials a worker's TCP endpoint. The address lives behind a shared
/// handle so a supervisor (or test) can [`retarget`](Self::retarget)
/// the connector after respawning the worker on a new port.
#[derive(Clone)]
pub struct TcpConnector {
    addr: Arc<Mutex<String>>,
    timeout: Duration,
}

impl TcpConnector {
    /// A connector for `addr` (`host:port`), applying `timeout` to
    /// reads and writes on established channels — a worker that stops
    /// answering (vs. one that refuses connections) is detected by the
    /// heartbeat timing out rather than hanging forever.
    #[must_use]
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        Self {
            addr: Arc::new(Mutex::new(addr.into())),
            timeout,
        }
    }

    /// Points the connector at a new endpoint (the next dial uses it;
    /// established transports are unaffected).
    pub fn retarget(&self, addr: impl Into<String>) {
        *self.addr.lock() = addr.into();
    }
}

impl Connector for TcpConnector {
    fn connect(&self) -> DistResult<Box<dyn Transport>> {
        let addr = self.addr.lock().clone();
        let stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(Box::new(TcpTransport { stream }))
    }

    fn describe(&self) -> String {
        format!("tcp({})", self.addr.lock())
    }
}

/// One established coordinator→worker socket.
pub struct TcpTransport {
    stream: TcpStream,
}

impl Transport for TcpTransport {
    fn call(&mut self, req: &Request) -> DistResult<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Ok(Response::decode(&payload)?)
    }
}

/// Serves `worker` on `listener` until a [`Request::Shutdown`] arrives
/// (acknowledged before returning). Connections are handled one at a
/// time; a dropped connection sends the loop back to `accept`, which is
/// how coordinator reconnects land. Malformed frames are answered with
/// [`Response::Fail`] and the connection is dropped.
///
/// # Errors
/// [`DistError::Io`] when `accept` itself fails.
pub fn serve(listener: &TcpListener, worker: &mut ShardWorker) -> DistResult<()> {
    loop {
        let (mut stream, _peer) = listener.accept().map_err(DistError::from)?;
        stream.set_nodelay(true).map_err(DistError::from)?;
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(p) => p,
                // Peer gone (EOF, reset): await the next connection.
                Err(DistError::Io(_)) => break,
                Err(e) => {
                    let fail = Response::Fail {
                        message: format!("bad frame: {e}"),
                    };
                    let _ = write_frame(&mut stream, &fail.encode());
                    break;
                }
            };
            let req = match Request::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    let fail = Response::Fail {
                        message: format!("bad request: {e}"),
                    };
                    let _ = write_frame(&mut stream, &fail.encode());
                    break;
                }
            };
            let shutdown = matches!(req, Request::Shutdown);
            let resp = worker.handle(&req);
            if write_frame(&mut stream, &resp.encode()).is_err() {
                break;
            }
            if shutdown {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").unwrap();
        let payload = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(payload, b"hello frames");

        // Flip a payload byte: checksum mismatch.
        let mut torn = buf.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &torn[..]),
            Err(DistError::Protocol(WireError::Corrupt(_)))
        ));

        // Truncate mid-payload: I/O error (torn stream).
        let short = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut &short[..]), Err(DistError::Io(_))));
    }
}
