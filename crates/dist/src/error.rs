//! Error taxonomy of the distributed deployment.

use cij_stream::WireError;
use cij_tpr::TprError;

/// Convenience alias.
pub type DistResult<T> = Result<T, DistError>;

/// Why a coordinator↔worker interaction failed.
#[derive(Debug)]
pub enum DistError {
    /// The deployment was mis-specified (e.g. the connector count does
    /// not match the policy's joinable shard pairs).
    Config(String),
    /// The peer's bytes were rejected before interpretation (bad magic,
    /// version mismatch, corrupt frame or payload).
    Protocol(WireError),
    /// The transport failed mid-call (socket error, torn frame).
    Io(std::io::Error),
    /// The worker could not be reached within the configured reconnect
    /// budget.
    WorkerUnavailable {
        /// Slot index of the unreachable worker.
        slot: usize,
        /// Connection attempts spent before giving up.
        attempts: u32,
    },
    /// The worker reached its engine but the engine refused the
    /// operation (the worker ships the rendered [`TprError`] back).
    Worker(String),
    /// The peer answered with a response of the wrong kind — a protocol
    /// state machine violation, not a transport fault.
    UnexpectedResponse {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What arrived instead.
        got: &'static str,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "deployment configuration error: {msg}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::Io(e) => write!(f, "transport I/O error: {e}"),
            Self::WorkerUnavailable { slot, attempts } => {
                write!(f, "worker {slot} unavailable after {attempts} attempts")
            }
            Self::Worker(msg) => write!(f, "worker-side engine error: {msg}"),
            Self::UnexpectedResponse { expected, got } => {
                write!(f, "expected {expected} response, got {got}")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Protocol(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        Self::Protocol(e)
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<cij_storage::StorageError> for DistError {
    fn from(e: cij_storage::StorageError) -> Self {
        Self::Protocol(WireError::from(e))
    }
}

/// The coordinator implements [`cij_core::ContinuousJoinEngine`], whose
/// contract speaks [`TprError`]; distribution faults fold into the
/// engine error channel with their rendered cause preserved.
impl From<DistError> for TprError {
    fn from(e: DistError) -> Self {
        TprError::Storage(cij_storage::StorageError::Corrupt(format!("dist: {e}")))
    }
}
