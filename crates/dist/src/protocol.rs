//! The coordinator↔worker RPC protocol.
//!
//! Every message is one [`cij_stream::wire`] payload: the two-byte
//! protocol header (magic, version), a message tag, then the fields.
//! Transports frame these payloads (the TCP transport adds a length
//! prefix and CRC32; the loopback transport passes them by reference)
//! but never interpret them.
//!
//! # Exactly-once application over at-least-once delivery
//!
//! Mutating requests carry a coordinator-assigned sequence number,
//! strictly increasing per worker (the coordinator draws them from one
//! global counter, so a worker sees gaps — only the order matters). A
//! worker journals each mutating request to its WAL *before* applying
//! it and remembers the response in an outbox keyed by sequence number.
//! A request with `seq ≤ last_applied` is **not** re-applied — the
//! cached response is returned — so the coordinator may resend freely
//! after a reconnect. [`Request::Step`] piggybacks `ack_through`, the
//! highest sequence number whose response the coordinator has safely
//! consumed; the worker prunes its outbox up to it.

use cij_core::{PairKey, PairStatus};
use cij_geom::{MovingRect, Time, TimeInterval};
use cij_join::JoinCounters;
use cij_storage::codec::{ByteReader, ByteWriter};
use cij_stream::wire::{
    check_header, get_mrect, get_objects, get_update, put_header, put_mrect, put_objects,
    put_update, set_from_byte, set_to_byte,
};
use cij_stream::WireError;
use cij_tpr::ObjectId;
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

const REQ_HELLO: u8 = 0x10;
const REQ_INIT: u8 = 0x11;
const REQ_TRACK: u8 = 0x12;
const REQ_START: u8 = 0x13;
const REQ_STEP: u8 = 0x14;
const REQ_IMMEDIATE: u8 = 0x15;
const REQ_PAIR_STATUS: u8 = 0x16;
const REQ_RESULT_AT: u8 = 0x17;
const REQ_COUNTERS: u8 = 0x18;
const REQ_PING: u8 = 0x19;
const REQ_SHUTDOWN: u8 = 0x1A;

const RESP_HELLO_ACK: u8 = 0x30;
const RESP_ACK: u8 = 0x31;
const RESP_STEP_ACK: u8 = 0x32;
const RESP_STATUS: u8 = 0x33;
const RESP_PAIRS: u8 = 0x34;
const RESP_COUNTERS: u8 = 0x35;
const RESP_PONG: u8 = 0x36;
const RESP_BYE: u8 = 0x37;
const RESP_FAIL: u8 = 0x38;

const OP_APPLY: u8 = 0;
const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// Which engine a worker should build at [`Request::Init`].
///
/// ETP is excluded by construction (it predicts no intervals, so it
/// cannot feed bit-identical delta streams), and Bˣ is excluded for now
/// because its query-enlargement parameters are not shipped over the
/// wire yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// NaiveJoin (§II-C).
    Naive,
    /// Time-constrained processing (§IV).
    Tc,
    /// TC + MTB-trees (§V) — the paper's headline engine.
    Mtb,
}

impl EngineKind {
    fn code(self) -> u8 {
        match self {
            Self::Naive => 1,
            Self::Tc => 2,
            Self::Mtb => 3,
        }
    }

    fn from_code(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(Self::Naive),
            2 => Ok(Self::Tc),
            3 => Ok(Self::Mtb),
            other => Err(WireError::Corrupt(format!("invalid engine kind {other}"))),
        }
    }

    /// The engine's display name (matches the paper's figures).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Naive => "NaiveJoin",
            Self::Tc => "TC",
            Self::Mtb => "TC+MTB",
        }
    }
}

/// One operation projected onto a worker's shard-pair engine — the wire
/// mirror of the shard coordinator's internal op kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOp {
    /// A same-shard trajectory update.
    Apply(ObjectUpdate),
    /// The insert half of a cross-shard migration (or a routed insert).
    Insert {
        /// Side the object joins.
        set: SetTag,
        /// The object.
        id: ObjectId,
        /// Its new trajectory.
        mbr: MovingRect,
    },
    /// The delete half of a migration (or an object retirement).
    Remove {
        /// Side the object leaves.
        set: SetTag,
        /// The object.
        id: ObjectId,
        /// The trajectory currently registered for it.
        old_mbr: MovingRect,
        /// When that trajectory was registered.
        last_update: Time,
    },
}

fn put_op(w: &mut ByteWriter, op: &ShardOp) {
    match op {
        ShardOp::Apply(u) => {
            w.put_u8(OP_APPLY);
            put_update(w, u);
        }
        ShardOp::Insert { set, id, mbr } => {
            w.put_u8(OP_INSERT);
            w.put_u8(set_to_byte(*set));
            w.put_u64(id.0);
            put_mrect(w, mbr);
        }
        ShardOp::Remove {
            set,
            id,
            old_mbr,
            last_update,
        } => {
            w.put_u8(OP_REMOVE);
            w.put_u8(set_to_byte(*set));
            w.put_u64(id.0);
            put_mrect(w, old_mbr);
            w.put_f64(*last_update);
        }
    }
}

fn get_op(r: &mut ByteReader<'_>) -> Result<ShardOp, WireError> {
    Ok(match r.get_u8()? {
        OP_APPLY => ShardOp::Apply(get_update(r)?),
        OP_INSERT => ShardOp::Insert {
            set: set_from_byte(r.get_u8()?)?,
            id: ObjectId(r.get_u64()?),
            mbr: get_mrect(r)?,
        },
        OP_REMOVE => ShardOp::Remove {
            set: set_from_byte(r.get_u8()?)?,
            id: ObjectId(r.get_u64()?),
            old_mbr: get_mrect(r)?,
            last_update: r.get_f64()?,
        },
        other => return Err(WireError::Corrupt(format!("invalid op tag {other}"))),
    })
}

fn put_pairs(w: &mut ByteWriter, pairs: &[PairKey]) {
    w.put_u32(pairs.len() as u32);
    for (a, b) in pairs {
        w.put_u64(a.0);
        w.put_u64(b.0);
    }
}

fn get_pairs(r: &mut ByteReader<'_>) -> Result<Vec<PairKey>, WireError> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push((ObjectId(r.get_u64()?), ObjectId(r.get_u64()?)));
    }
    Ok(out)
}

/// A coordinator→worker message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Connection handshake; the worker answers with its high-water
    /// sequence number so the coordinator knows what to replay.
    Hello,
    /// Builds the worker's engine over its shard-pair subsets.
    Init {
        /// Sequence number (see the module docs).
        seq: u64,
        /// Engine to build.
        engine: EngineKind,
        /// Maximum update interval `T_M`.
        t_m: Time,
        /// MTB bucket granularity.
        buckets_per_tm: u32,
        /// The worker's A-side subset.
        set_a: Vec<MovingObject>,
        /// The worker's B-side subset.
        set_b: Vec<MovingObject>,
        /// Engine start time.
        start: Time,
    },
    /// Turns on result-change tracking.
    Track {
        /// Sequence number.
        seq: u64,
    },
    /// Runs the initial join at `now` (phase 1 of §II-A).
    Start {
        /// Sequence number.
        seq: u64,
        /// Initial-join time.
        now: Time,
    },
    /// One tick: advance the clock, apply the projected ops in order,
    /// garbage-collect, and drain the engine's result changes into the
    /// ack. Sent every tick — empty `ops` included — so the worker's
    /// engine sees exactly the single-process call cadence.
    Step {
        /// Sequence number.
        seq: u64,
        /// The tick time.
        now: Time,
        /// The ops projected onto this worker, in application order.
        ops: Vec<ShardOp>,
        /// Outbox entries up to this sequence number may be pruned.
        ack_through: u64,
    },
    /// Applies one op *without* the tick bundle (no advance, no gc, no
    /// change drain) — the wire mirror of a direct
    /// `insert_object`/`remove_object` trait call, whose result-buffer
    /// changes must stay queued until the next tick's drain.
    Immediate {
        /// Sequence number.
        seq: u64,
        /// The operation time.
        now: Time,
        /// The operation.
        op: ShardOp,
    },
    /// Reads one pair's activity at `t`.
    PairStatusAt {
        /// The pair, oriented (A-object, B-object).
        pair: PairKey,
        /// The queried instant.
        t: Time,
    },
    /// Reads the worker's full answer at `t`.
    ResultAt {
        /// The queried instant.
        t: Time,
    },
    /// Reads the worker's accumulated traversal counters.
    Counters,
    /// Liveness probe; echoed back in [`Response::Pong`].
    Ping {
        /// Echo payload.
        nonce: u64,
    },
    /// Asks the worker process to exit after acknowledging.
    Shutdown,
}

impl Request {
    /// The request's sequence number — `Some` exactly for the mutating
    /// requests that are journaled, deduplicated and replayed.
    #[must_use]
    pub fn seq(&self) -> Option<u64> {
        match self {
            Self::Init { seq, .. }
            | Self::Track { seq }
            | Self::Start { seq, .. }
            | Self::Step { seq, .. }
            | Self::Immediate { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    /// Serializes the request (protocol header included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w);
        match self {
            Self::Hello => w.put_u8(REQ_HELLO),
            Self::Init {
                seq,
                engine,
                t_m,
                buckets_per_tm,
                set_a,
                set_b,
                start,
            } => {
                w.put_u8(REQ_INIT);
                w.put_u64(*seq);
                w.put_u8(engine.code());
                w.put_f64(*t_m);
                w.put_u32(*buckets_per_tm);
                put_objects(&mut w, set_a);
                put_objects(&mut w, set_b);
                w.put_f64(*start);
            }
            Self::Track { seq } => {
                w.put_u8(REQ_TRACK);
                w.put_u64(*seq);
            }
            Self::Start { seq, now } => {
                w.put_u8(REQ_START);
                w.put_u64(*seq);
                w.put_f64(*now);
            }
            Self::Step {
                seq,
                now,
                ops,
                ack_through,
            } => {
                w.put_u8(REQ_STEP);
                w.put_u64(*seq);
                w.put_f64(*now);
                w.put_u64(*ack_through);
                w.put_u32(ops.len() as u32);
                for op in ops {
                    put_op(&mut w, op);
                }
            }
            Self::Immediate { seq, now, op } => {
                w.put_u8(REQ_IMMEDIATE);
                w.put_u64(*seq);
                w.put_f64(*now);
                put_op(&mut w, op);
            }
            Self::PairStatusAt { pair, t } => {
                w.put_u8(REQ_PAIR_STATUS);
                w.put_u64(pair.0 .0);
                w.put_u64(pair.1 .0);
                w.put_f64(*t);
            }
            Self::ResultAt { t } => {
                w.put_u8(REQ_RESULT_AT);
                w.put_f64(*t);
            }
            Self::Counters => w.put_u8(REQ_COUNTERS),
            Self::Ping { nonce } => {
                w.put_u8(REQ_PING);
                w.put_u64(*nonce);
            }
            Self::Shutdown => w.put_u8(REQ_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Deserializes a request payload.
    ///
    /// # Errors
    /// Typed [`WireError`]s: bad magic / foreign version before any
    /// field is read, `Corrupt` on truncation, unknown tags, or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let body = check_header(payload)?;
        let mut r = ByteReader::new(body);
        let req = match r.get_u8()? {
            REQ_HELLO => Self::Hello,
            REQ_INIT => {
                let seq = r.get_u64()?;
                let engine = EngineKind::from_code(r.get_u8()?)?;
                let t_m = r.get_f64()?;
                let buckets_per_tm = r.get_u32()?;
                let set_a = get_objects(&mut r)?;
                let set_b = get_objects(&mut r)?;
                let start = r.get_f64()?;
                Self::Init {
                    seq,
                    engine,
                    t_m,
                    buckets_per_tm,
                    set_a,
                    set_b,
                    start,
                }
            }
            REQ_TRACK => Self::Track { seq: r.get_u64()? },
            REQ_START => Self::Start {
                seq: r.get_u64()?,
                now: r.get_f64()?,
            },
            REQ_STEP => {
                let seq = r.get_u64()?;
                let now = r.get_f64()?;
                let ack_through = r.get_u64()?;
                let n = r.get_u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    ops.push(get_op(&mut r)?);
                }
                Self::Step {
                    seq,
                    now,
                    ops,
                    ack_through,
                }
            }
            REQ_IMMEDIATE => Self::Immediate {
                seq: r.get_u64()?,
                now: r.get_f64()?,
                op: get_op(&mut r)?,
            },
            REQ_PAIR_STATUS => Self::PairStatusAt {
                pair: (ObjectId(r.get_u64()?), ObjectId(r.get_u64()?)),
                t: r.get_f64()?,
            },
            REQ_RESULT_AT => Self::ResultAt { t: r.get_f64()? },
            REQ_COUNTERS => Self::Counters,
            REQ_PING => Self::Ping {
                nonce: r.get_u64()?,
            },
            REQ_SHUTDOWN => Self::Shutdown,
            other => {
                return Err(WireError::Corrupt(format!(
                    "unknown request tag {other:#04x}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after request",
                r.remaining()
            )));
        }
        Ok(req)
    }
}

/// A worker→coordinator message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake answer: the worker's durable progress.
    HelloAck {
        /// Highest sequence number the worker has applied (0 = fresh).
        last_applied: u64,
    },
    /// A mutating request (other than a step) was applied.
    Ack {
        /// The applied request's sequence number.
        seq: u64,
    },
    /// A tick was applied; carries the drained result changes.
    StepAck {
        /// The step's sequence number.
        seq: u64,
        /// The engine's drained result changes (sorted), or `None` if
        /// the engine does not track changes.
        changes: Option<Vec<PairKey>>,
    },
    /// A pair's activity.
    Status(PairStatus),
    /// A full answer snapshot (sorted).
    Pairs(Vec<PairKey>),
    /// Accumulated traversal counters.
    CountersAck(JoinCounters),
    /// Liveness echo.
    Pong {
        /// The pinged nonce.
        nonce: u64,
    },
    /// Shutdown acknowledged; the worker exits after sending this.
    Bye,
    /// The worker reached its engine but the operation failed (the
    /// rendered engine error). Deterministic — resending will fail the
    /// same way — so the coordinator must not retry.
    Fail {
        /// The rendered error.
        message: String,
    },
}

impl Response {
    /// The response kind's name, for state-machine error reporting.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::HelloAck { .. } => "HelloAck",
            Self::Ack { .. } => "Ack",
            Self::StepAck { .. } => "StepAck",
            Self::Status(_) => "Status",
            Self::Pairs(_) => "Pairs",
            Self::CountersAck(_) => "CountersAck",
            Self::Pong { .. } => "Pong",
            Self::Bye => "Bye",
            Self::Fail { .. } => "Fail",
        }
    }

    /// Serializes the response (protocol header included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w);
        match self {
            Self::HelloAck { last_applied } => {
                w.put_u8(RESP_HELLO_ACK);
                w.put_u64(*last_applied);
            }
            Self::Ack { seq } => {
                w.put_u8(RESP_ACK);
                w.put_u64(*seq);
            }
            Self::StepAck { seq, changes } => {
                w.put_u8(RESP_STEP_ACK);
                w.put_u64(*seq);
                match changes {
                    None => w.put_u8(0),
                    Some(pairs) => {
                        w.put_u8(1);
                        put_pairs(&mut w, pairs);
                    }
                }
            }
            Self::Status(status) => {
                w.put_u8(RESP_STATUS);
                match status.active {
                    None => w.put_u8(0),
                    Some(iv) => {
                        w.put_u8(1);
                        w.put_f64(iv.start);
                        w.put_f64(iv.end);
                    }
                }
                match status.next_start {
                    None => w.put_u8(0),
                    Some(t) => {
                        w.put_u8(1);
                        w.put_f64(t);
                    }
                }
            }
            Self::Pairs(pairs) => {
                w.put_u8(RESP_PAIRS);
                put_pairs(&mut w, pairs);
            }
            Self::CountersAck(c) => {
                w.put_u8(RESP_COUNTERS);
                w.put_u64(c.node_pairs);
                w.put_u64(c.entry_comparisons);
                w.put_u64(c.ic_pruned);
                w.put_u64(c.pairs_emitted);
            }
            Self::Pong { nonce } => {
                w.put_u8(RESP_PONG);
                w.put_u64(*nonce);
            }
            Self::Bye => w.put_u8(RESP_BYE),
            Self::Fail { message } => {
                w.put_u8(RESP_FAIL);
                let bytes = message.as_bytes();
                w.put_u32(bytes.len() as u32);
                for b in bytes {
                    w.put_u8(*b);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes a response payload.
    ///
    /// # Errors
    /// Typed [`WireError`]s, as for [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let body = check_header(payload)?;
        let mut r = ByteReader::new(body);
        let resp = match r.get_u8()? {
            RESP_HELLO_ACK => Self::HelloAck {
                last_applied: r.get_u64()?,
            },
            RESP_ACK => Self::Ack { seq: r.get_u64()? },
            RESP_STEP_ACK => {
                let seq = r.get_u64()?;
                let changes = match r.get_u8()? {
                    0 => None,
                    1 => Some(get_pairs(&mut r)?),
                    other => {
                        return Err(WireError::Corrupt(format!("invalid option flag {other}")))
                    }
                };
                Self::StepAck { seq, changes }
            }
            RESP_STATUS => {
                let active = match r.get_u8()? {
                    0 => None,
                    1 => {
                        let start = r.get_f64()?;
                        let end = r.get_f64()?;
                        Some(TimeInterval { start, end })
                    }
                    other => {
                        return Err(WireError::Corrupt(format!("invalid option flag {other}")))
                    }
                };
                let next_start = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_f64()?),
                    other => {
                        return Err(WireError::Corrupt(format!("invalid option flag {other}")))
                    }
                };
                Self::Status(PairStatus { active, next_start })
            }
            RESP_PAIRS => Self::Pairs(get_pairs(&mut r)?),
            RESP_COUNTERS => Self::CountersAck(JoinCounters {
                node_pairs: r.get_u64()?,
                entry_comparisons: r.get_u64()?,
                ic_pruned: r.get_u64()?,
                pairs_emitted: r.get_u64()?,
            }),
            RESP_PONG => Self::Pong {
                nonce: r.get_u64()?,
            },
            RESP_BYE => Self::Bye,
            RESP_FAIL => {
                let n = r.get_u32()? as usize;
                let mut bytes = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    bytes.push(r.get_u8()?);
                }
                Self::Fail {
                    message: String::from_utf8_lossy(&bytes).into_owned(),
                }
            }
            other => {
                return Err(WireError::Corrupt(format!(
                    "unknown response tag {other:#04x}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after response",
                r.remaining()
            )));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_stream::{PROTOCOL_MAGIC, PROTOCOL_VERSION};

    fn mrect(seed: f64) -> MovingRect {
        MovingRect {
            lo: [seed, seed + 1.0],
            hi: [seed + 2.0, seed + 3.0],
            vlo: [-seed, 0.5],
            vhi: [seed, 0.75],
            t_ref: seed,
        }
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello,
            Request::Init {
                seq: 1,
                engine: EngineKind::Mtb,
                t_m: 20.0,
                buckets_per_tm: 4,
                set_a: vec![MovingObject {
                    id: ObjectId(1),
                    mbr: mrect(1.0),
                }],
                set_b: vec![],
                start: 0.0,
            },
            Request::Track { seq: 2 },
            Request::Start { seq: 3, now: 0.0 },
            Request::Step {
                seq: 4,
                now: 1.0,
                ops: vec![
                    ShardOp::Apply(ObjectUpdate {
                        id: ObjectId(7),
                        set: SetTag::B,
                        old_mbr: mrect(2.0),
                        last_update: 0.5,
                        new_mbr: mrect(3.0),
                    }),
                    ShardOp::Insert {
                        set: SetTag::A,
                        id: ObjectId(8),
                        mbr: mrect(4.0),
                    },
                    ShardOp::Remove {
                        set: SetTag::B,
                        id: ObjectId(9),
                        old_mbr: mrect(5.0),
                        last_update: 0.25,
                    },
                ],
                ack_through: 3,
            },
            Request::Step {
                seq: 5,
                now: 2.0,
                ops: vec![],
                ack_through: 4,
            },
            Request::Immediate {
                seq: 6,
                now: 2.0,
                op: ShardOp::Remove {
                    set: SetTag::A,
                    id: ObjectId(1),
                    old_mbr: mrect(1.0),
                    last_update: 0.0,
                },
            },
            Request::PairStatusAt {
                pair: (ObjectId(1), ObjectId(7)),
                t: 2.5,
            },
            Request::ResultAt { t: 3.0 },
            Request::Counters,
            Request::Ping { nonce: 42 },
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloAck { last_applied: 17 },
            Response::Ack { seq: 3 },
            Response::StepAck {
                seq: 4,
                changes: Some(vec![(ObjectId(1), ObjectId(7)), (ObjectId(8), ObjectId(9))]),
            },
            Response::StepAck {
                seq: 5,
                changes: None,
            },
            Response::Status(PairStatus {
                active: Some(TimeInterval {
                    start: 1.0,
                    end: f64::INFINITY,
                }),
                next_start: Some(9.0),
            }),
            Response::Status(PairStatus::default()),
            Response::Pairs(vec![(ObjectId(1), ObjectId(7))]),
            Response::CountersAck(JoinCounters {
                node_pairs: 1,
                entry_comparisons: 2,
                ic_pruned: 3,
                pairs_emitted: 4,
            }),
            Response::Pong { nonce: 42 },
            Response::Bye,
            Response::Fail {
                message: "object not found: 9".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(bytes[0], PROTOCOL_MAGIC);
            assert_eq!(bytes[1], PROTOCOL_VERSION);
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(bytes[0], PROTOCOL_MAGIC);
            assert_eq!(bytes[1], PROTOCOL_VERSION);
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn seq_is_defined_exactly_for_mutating_requests() {
        let seqs: Vec<Option<u64>> = sample_requests().iter().map(Request::seq).collect();
        assert_eq!(
            seqs,
            vec![
                None,
                Some(1),
                Some(2),
                Some(3),
                Some(4),
                Some(5),
                Some(6),
                None,
                None,
                None,
                None,
                None
            ]
        );
    }

    #[test]
    fn garbage_and_foreign_versions_are_typed_errors() {
        assert!(matches!(
            Request::decode(&[]),
            Err(WireError::BadMagic { found: None })
        ));
        let mut bytes = Request::Hello.encode();
        bytes[1] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::VersionMismatch { .. })
        ));
        let mut trailing = Response::Bye.encode();
        trailing.push(0);
        assert!(matches!(
            Response::decode(&trailing),
            Err(WireError::Corrupt(_))
        ));
    }
}
