//! The distributed coordinator: the shard coordinator's row/column
//! topology, with each shard-pair engine living behind a transport.
//!
//! # Bit-identical merged streams
//!
//! [`DistCoordinator`] implements [`ContinuousJoinEngine`], so it wraps
//! in the same `StreamService` as a single-process engine — and its
//! merged delta stream is *bit-identical* to a `ShardCoordinator` over
//! the same policy, because every engine-facing call maps to worker
//! RPCs that preserve the exact single-process call cadence:
//!
//! - one [`Request::Step`] per tick per worker — empty op lists
//!   included — bundling `advance_time → ops → gc → take_result_changes`
//!   in the order the stream service performs them;
//! - direct `insert_object`/`remove_object` trait calls map to
//!   [`Request::Immediate`], which applies the op *without* the tick
//!   bundle, so result-buffer changes stay queued until the next tick's
//!   drain, exactly as in-process;
//! - `pair_status_at` routes to the one worker owning the pair's shard
//!   pair, mirroring the shard coordinator's lookup.
//!
//! # Fault handling
//!
//! Every RPC runs under a reconnect loop with bounded exponential
//! backoff: a dead channel is redialed via the slot's [`Connector`],
//! the handshake's [`Response::HelloAck`] reveals the worker's durable
//! progress, and the coordinator replays its retained request history
//! past that point. A worker that restarted from its WAL replays
//! nothing; a worker that lost everything (outbox included) is rebuilt
//! from the full history. Either way the resent in-flight request is
//! answered from the worker's (rebuilt) outbox, so the merged stream
//! does not fork — the crate's differential tests kill workers mid-run
//! and compare streams byte for byte.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cij_core::{publish_engine_totals, ContinuousJoinEngine, EngineConfig, PairKey, PairStatus};
use cij_geom::{MovingRect, Time};
use cij_join::JoinCounters;
use cij_obs::MetricsRegistry;
use cij_shard::{PartitionPolicy, RouteDecision, ShardRouter};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprError, TprResult};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};
use parking_lot::Mutex;

use crate::error::{DistError, DistResult};
use crate::protocol::{EngineKind, Request, Response, ShardOp};
use crate::transport::{Connector, Transport};

/// Deployment parameters: what the workers build and how hard the
/// coordinator tries to reach them.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Engine each worker builds ([`EngineKind::Mtb`] by default).
    pub engine: EngineKind,
    /// Maximum update interval `T_M`.
    pub t_m: Time,
    /// MTB bucket granularity.
    pub buckets_per_tm: u32,
    /// Enables the coordinator's metrics registry (`dist.*` counters,
    /// per-worker RTT and ack-lag histograms).
    pub metrics: bool,
    /// Connection attempts per RPC before the worker is declared
    /// unavailable.
    pub connect_attempts: u32,
    /// First-retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for DistConfig {
    fn default() -> Self {
        let engine_defaults = EngineConfig::builder().build();
        Self {
            engine: EngineKind::Mtb,
            t_m: engine_defaults.t_m,
            buckets_per_tm: engine_defaults.buckets_per_tm,
            metrics: false,
            connect_attempts: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

/// The joinable shard pairs of `policy`, in the canonical slot order —
/// row-major over `(shard_a, shard_b)`. Deployments must hand
/// [`DistCoordinator::new`] one connector per entry, in this order.
#[must_use]
pub fn joinable_pairs(policy: &dyn PartitionPolicy) -> Vec<(usize, usize)> {
    let k = policy.shard_count();
    let mut pairs = Vec::new();
    for i in 0..k {
        for j in 0..k {
            if policy.joinable(i, j) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

struct WorkerLink {
    connector: Box<dyn Connector>,
    transport: Option<Box<dyn Transport>>,
    /// Every mutating request sent to this worker, in sequence order —
    /// the recovery source for a worker that lost its WAL. Retained for
    /// the deployment's lifetime (`dist.history_requests` tracks the
    /// total).
    history: Vec<Request>,
    /// Highest sequence number whose response was consumed.
    acked_seq: u64,
    ever_connected: bool,
    shard_a: usize,
    shard_b: usize,
}

impl WorkerLink {
    fn newest_seq(&self) -> u64 {
        self.history.last().and_then(Request::seq).unwrap_or(0)
    }
}

/// A [`ContinuousJoinEngine`] whose shard-pair engines live in worker
/// processes (see the module docs). Drop-in wherever a single engine
/// runs — including as a `StreamService` factory product.
pub struct DistCoordinator {
    config: DistConfig,
    policy: Arc<dyn PartitionPolicy>,
    router: ShardRouter,
    slots: Vec<Mutex<WorkerLink>>,
    /// (shard_a, shard_b) → slot index for joinable pairs.
    slot_of: HashMap<(usize, usize), usize>,
    /// Slot indices of row i (A-shard i) / column j (B-shard j).
    rows: Vec<Vec<usize>>,
    cols: Vec<Vec<usize>>,
    population_a: Vec<usize>,
    population_b: Vec<usize>,
    /// Global mutating-request sequence; per-worker subsequences are
    /// strictly increasing (with gaps).
    seq: u64,
    /// Heartbeat nonce source.
    nonce: u64,
    /// Result changes harvested from step acks, drained by
    /// `take_result_changes`.
    pending: Vec<PairKey>,
    pending_none: bool,
    deltas_enabled: bool,
    /// An error from an infallible trait method (`enable_delta_tracking`),
    /// surfaced by the next fallible call.
    deferred: Option<DistError>,
    /// Local dummy pool: worker I/O is not visible here.
    pool: BufferPool,
    obs: MetricsRegistry,
}

impl DistCoordinator {
    /// Partitions both sets under `policy` and initialises one worker
    /// per joinable shard pair over `connectors` (one per
    /// [`joinable_pairs`] entry, same order). Workers receive their
    /// subsets via [`Request::Init`]; delta tracking and the initial
    /// join follow through the usual engine-trait calls.
    ///
    /// # Errors
    /// [`DistError::Config`] on a connector-count mismatch; connection
    /// or worker errors from the init round-trips.
    pub fn new(
        config: DistConfig,
        policy: Arc<dyn PartitionPolicy>,
        connectors: Vec<Box<dyn Connector>>,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
    ) -> DistResult<Self> {
        let k = policy.shard_count();
        let pairs = joinable_pairs(&*policy);
        if connectors.len() != pairs.len() {
            return Err(DistError::Config(format!(
                "policy {} (K={k}) has {} joinable shard pairs but {} connectors were supplied",
                policy.name(),
                pairs.len(),
                connectors.len()
            )));
        }

        let mut router = ShardRouter::new(policy.clone());
        let mut parts_a: Vec<Vec<MovingObject>> = vec![Vec::new(); k];
        let mut parts_b: Vec<Vec<MovingObject>> = vec![Vec::new(); k];
        for o in set_a {
            parts_a[router.place(o.id, SetTag::A, &o.mbr, now)].push(*o);
        }
        for o in set_b {
            parts_b[router.place(o.id, SetTag::B, &o.mbr, now)].push(*o);
        }

        let mut slot_of = HashMap::new();
        let mut rows = vec![Vec::new(); k];
        let mut cols = vec![Vec::new(); k];
        let mut slots = Vec::new();
        for (idx, (connector, &(i, j))) in connectors.into_iter().zip(&pairs).enumerate() {
            slot_of.insert((i, j), idx);
            rows[i].push(idx);
            cols[j].push(idx);
            slots.push(Mutex::new(WorkerLink {
                connector,
                transport: None,
                history: Vec::new(),
                acked_seq: 0,
                ever_connected: false,
                shard_a: i,
                shard_b: j,
            }));
        }

        let obs = MetricsRegistry::enabled_if(config.metrics);
        let mut coordinator = Self {
            config,
            policy,
            router,
            slots,
            slot_of,
            rows,
            cols,
            population_a: parts_a.iter().map(Vec::len).collect(),
            population_b: parts_b.iter().map(Vec::len).collect(),
            seq: 0,
            nonce: 0,
            pending: Vec::new(),
            pending_none: false,
            deltas_enabled: false,
            deferred: None,
            pool: BufferPool::new(
                Arc::new(InMemoryStore::new()),
                BufferPoolConfig::with_capacity(8),
            ),
            obs,
        };

        for (idx, &(i, j)) in pairs.iter().enumerate() {
            coordinator.seq += 1;
            let req = Request::Init {
                seq: coordinator.seq,
                engine: coordinator.config.engine,
                t_m: coordinator.config.t_m,
                buckets_per_tm: coordinator.config.buckets_per_tm,
                set_a: parts_a[i].clone(),
                set_b: parts_b[j].clone(),
                start: now,
            };
            coordinator.send_expect_ack(idx, req)?;
        }
        Ok(coordinator)
    }

    /// Shards per object set.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.policy.shard_count()
    }

    /// Workers in the join plan (one per joinable shard pair).
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.slots.len()
    }

    /// Cross-shard migrations routed so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.router.migrations()
    }

    /// The shard pair each worker slot serves, in slot order.
    #[must_use]
    pub fn worker_pairs(&self) -> Vec<(usize, usize)> {
        self.slots
            .iter()
            .map(|s| {
                let link = s.lock();
                (link.shard_a, link.shard_b)
            })
            .collect()
    }

    /// Pings every worker, reconnecting (and resyncing) any whose
    /// channel died. A worker that cannot be revived within the backoff
    /// budget surfaces as
    /// [`DistError::WorkerUnavailable`].
    ///
    /// # Errors
    /// The first unreachable or misbehaving worker, in slot order.
    pub fn heartbeat(&mut self) -> DistResult<()> {
        for idx in 0..self.slots.len() {
            self.nonce += 1;
            let nonce = self.nonce;
            let mut link = self.slots[idx].lock();
            let resp = self.call_link(idx, &mut link, &Request::Ping { nonce })?;
            match resp {
                Response::Pong { nonce: echoed } if echoed == nonce => {}
                Response::Pong { .. } => {
                    return Err(DistError::Worker(format!(
                        "worker {idx} echoed a stale heartbeat nonce"
                    )))
                }
                other => {
                    return Err(DistError::UnexpectedResponse {
                        expected: "Pong",
                        got: other.kind(),
                    })
                }
            }
        }
        Ok(())
    }

    /// Sends every worker a [`Request::Shutdown`] on a best-effort
    /// basis (for deployments whose workers are real processes).
    pub fn shutdown_workers(&mut self) {
        for slot in &self.slots {
            let mut link = slot.lock();
            let mut transport = match link.transport.take() {
                Some(t) => Some(t),
                None => link.connector.connect().ok(),
            };
            if let Some(t) = transport.as_mut() {
                let _ = t.call(&Request::Shutdown);
            }
        }
    }

    // ------------------------------------------------------------------
    // RPC plumbing
    // ------------------------------------------------------------------

    /// One RPC against a slot, with reconnect-and-resync on channel
    /// failure, under the bounded backoff budget.
    fn call_link(&self, idx: usize, link: &mut WorkerLink, req: &Request) -> DistResult<Response> {
        let mut attempts: u32 = 0;
        loop {
            if link.transport.is_none() {
                self.connect_link(idx, link, &mut attempts)?;
            }
            self.obs.counter("dist.rpc.calls").inc();
            let t0 = Instant::now();
            match link.transport.as_mut().expect("connected above").call(req) {
                Ok(resp) => {
                    self.obs
                        .histogram(&format!("dist.worker.{idx}.rtt_us"))
                        .record(t0.elapsed().as_micros() as u64);
                    if let Response::Fail { message } = resp {
                        // Deterministic worker-side failure: retrying
                        // would reproduce it.
                        return Err(DistError::Worker(message));
                    }
                    return Ok(resp);
                }
                Err(DistError::Io(_) | DistError::Protocol(_)) => {
                    self.obs.counter("dist.rpc.errors").inc();
                    link.transport = None;
                    // Loop: `connect_link` enforces the attempt budget.
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Dials the slot until connected or out of budget. On success the
    /// worker has been handshaken and resynced: its applied history is
    /// at least `link.newest_seq()`.
    fn connect_link(
        &self,
        idx: usize,
        link: &mut WorkerLink,
        attempts: &mut u32,
    ) -> DistResult<()> {
        loop {
            if *attempts >= self.config.connect_attempts {
                return Err(DistError::WorkerUnavailable {
                    slot: idx,
                    attempts: *attempts,
                });
            }
            if *attempts > 0 {
                let exp = (*attempts - 1).min(16);
                let delay = self
                    .config
                    .backoff_base
                    .saturating_mul(1 << exp)
                    .min(self.config.backoff_cap);
                std::thread::sleep(delay);
            }
            *attempts += 1;

            let Ok(mut transport) = link.connector.connect() else {
                continue;
            };
            let Ok(resp) = transport.call(&Request::Hello) else {
                continue;
            };
            let Response::HelloAck { last_applied } = resp else {
                return Err(DistError::UnexpectedResponse {
                    expected: "HelloAck",
                    got: resp.kind(),
                });
            };
            if link.ever_connected {
                self.obs.counter("dist.reconnects").inc();
            } else {
                link.ever_connected = true;
            }

            if last_applied < link.newest_seq() {
                // The worker is behind our history — it restarted with
                // a stale (or empty) WAL. Replay what it is missing;
                // sequence-number dedup makes over-replay harmless.
                self.obs.counter("dist.resyncs").inc();
                let mut replayed = 0u64;
                let mut channel_ok = true;
                for past in &link.history {
                    let seq = past.seq().expect("history holds mutating requests");
                    if seq <= last_applied {
                        continue;
                    }
                    match transport.call(past) {
                        Ok(Response::Fail { message }) => return Err(DistError::Worker(message)),
                        Ok(_) => replayed += 1,
                        Err(_) => {
                            channel_ok = false;
                            break;
                        }
                    }
                }
                self.obs.counter("dist.replayed_requests").add(replayed);
                if !channel_ok {
                    continue;
                }
            }
            link.transport = Some(transport);
            return Ok(());
        }
    }

    /// Sends one mutating request and returns the worker's response.
    /// The request joins the slot's history only once acknowledged: an
    /// in-flight request is retried by `call_link` itself, so the
    /// replay history must cover exactly the requests *before* it — a
    /// worker that applied the in-flight request but lost the response
    /// dedups the retry from its outbox either way.
    fn send_mutating(&self, idx: usize, req: Request) -> DistResult<Response> {
        let mut link = self.slots[idx].lock();
        let resp = self.call_link(idx, &mut link, &req)?;
        if let Some(seq) = req.seq() {
            link.acked_seq = link.acked_seq.max(seq);
        }
        link.history.push(req);
        Ok(resp)
    }

    fn send_expect_ack(&self, idx: usize, req: Request) -> DistResult<()> {
        match self.send_mutating(idx, req)? {
            Response::Ack { .. } => Ok(()),
            other => Err(DistError::UnexpectedResponse {
                expected: "Ack",
                got: other.kind(),
            }),
        }
    }

    fn take_deferred(&mut self) -> TprResult<()> {
        match self.deferred.take() {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Routing (the shard coordinator's topology, op-list flavoured)
    // ------------------------------------------------------------------

    /// The slot indices an update of (`set`, shard) must reach.
    fn fan(&self, set: SetTag, shard: usize) -> &[usize] {
        match set {
            SetTag::A => &self.rows[shard],
            SetTag::B => &self.cols[shard],
        }
    }

    /// Projects one update onto per-slot op lists, updating the
    /// router's placement as a side effect.
    fn route_ops(&mut self, update: &ObjectUpdate, ops: &mut [Vec<ShardOp>], now: Time) {
        match self.router.route(update, now) {
            RouteDecision::Stay(shard) => {
                for &slot in self.fan(update.set, shard) {
                    ops[slot].push(ShardOp::Apply(*update));
                }
            }
            RouteDecision::Migrate { from, to } => {
                for &slot in self.fan(update.set, from) {
                    ops[slot].push(ShardOp::Remove {
                        set: update.set,
                        id: update.id,
                        old_mbr: update.old_mbr,
                        last_update: update.last_update,
                    });
                }
                for &slot in self.fan(update.set, to) {
                    ops[slot].push(ShardOp::Insert {
                        set: update.set,
                        id: update.id,
                        mbr: update.new_mbr,
                    });
                }
                match update.set {
                    SetTag::A => {
                        self.population_a[from] -= 1;
                        self.population_a[to] += 1;
                    }
                    SetTag::B => {
                        self.population_b[from] -= 1;
                        self.population_b[to] += 1;
                    }
                }
            }
        }
    }

    /// Sends an [`Request::Immediate`] op to every slot in the fan.
    fn send_immediate(&mut self, fan: Vec<usize>, op: ShardOp, now: Time) -> TprResult<()> {
        for idx in fan {
            self.seq += 1;
            let req = Request::Immediate {
                seq: self.seq,
                now,
                op: op.clone(),
            };
            self.send_expect_ack(idx, req)?;
        }
        Ok(())
    }
}

impl ContinuousJoinEngine for DistCoordinator {
    fn name(&self) -> &'static str {
        "Distributed"
    }

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        self.take_deferred()?;
        for idx in 0..self.slots.len() {
            self.seq += 1;
            self.send_expect_ack(idx, Request::Start { seq: self.seq, now })?;
        }
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        self.apply_batch(std::slice::from_ref(update), now)
    }

    /// One tick: routes the batch onto per-worker op lists and sends
    /// every worker — empty lists included — its [`Request::Step`], so
    /// each remote engine sees exactly the advance/apply/gc cadence of
    /// the in-process run. Harvested result changes queue locally until
    /// [`take_result_changes`](ContinuousJoinEngine::take_result_changes).
    fn apply_batch(&mut self, updates: &[ObjectUpdate], now: Time) -> TprResult<()> {
        self.take_deferred()?;
        let mut ops: Vec<Vec<ShardOp>> = vec![Vec::new(); self.slots.len()];
        for u in updates {
            self.route_ops(u, &mut ops, now);
        }
        for (idx, slot_ops) in ops.into_iter().enumerate() {
            self.seq += 1;
            let seq = self.seq;
            let mut link = self.slots[idx].lock();
            let ack_through = link.acked_seq;
            self.obs
                .histogram(&format!("dist.worker.{idx}.ack_lag"))
                .record(seq - ack_through);
            let req = Request::Step {
                seq,
                now,
                ops: slot_ops,
                ack_through,
            };
            let resp = self.call_link(idx, &mut link, &req)?;
            let Response::StepAck { changes, .. } = resp else {
                return Err(DistError::UnexpectedResponse {
                    expected: "StepAck",
                    got: resp.kind(),
                }
                .into());
            };
            link.acked_seq = seq;
            link.history.push(req);
            drop(link);
            match changes {
                Some(mut c) => self.pending.append(&mut c),
                None => self.pending_none = true,
            }
        }
        Ok(())
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        self.take_deferred()?;
        let shard = self.router.place(id, set, &mbr, now);
        match set {
            SetTag::A => self.population_a[shard] += 1,
            SetTag::B => self.population_b[shard] += 1,
        }
        let fan = self.fan(set, shard).to_vec();
        self.send_immediate(fan, ShardOp::Insert { set, id, mbr }, now)
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        last_update: Time,
        now: Time,
    ) -> TprResult<()> {
        self.take_deferred()?;
        let Some(record) = self.router.remove(id) else {
            return Err(TprError::ObjectNotFound(id));
        };
        let shard = record.shard;
        match set {
            SetTag::A => self.population_a[shard] -= 1,
            SetTag::B => self.population_b[shard] -= 1,
        }
        let fan = self.fan(set, shard).to_vec();
        self.send_immediate(
            fan,
            ShardOp::Remove {
                set,
                id,
                old_mbr: *old_mbr,
                last_update,
            },
            now,
        )
    }

    // `advance_time` and `gc` ride inside each tick's `Step` bundle;
    // locally they are no-ops so the cadence is dictated by
    // `apply_batch` alone.

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        let mut out = Vec::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let mut link = slot.lock();
            match self.call_link(idx, &mut link, &Request::ResultAt { t }) {
                Ok(Response::Pairs(mut pairs)) => out.append(&mut pairs),
                // The trait's snapshot read is infallible: an
                // unreachable worker degrades the snapshot (flagged by
                // the counter) instead of panicking.
                _ => self.obs.counter("dist.rpc.dropped_reads").inc(),
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn pool(&self) -> &BufferPool {
        // Worker I/O happens in the worker processes; this local pool
        // is idle and reports zeros.
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        let mut total = JoinCounters::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let mut link = slot.lock();
            match self.call_link(idx, &mut link, &Request::Counters) {
                Ok(Response::CountersAck(c)) => total = total.merged(c),
                _ => self.obs.counter("dist.rpc.dropped_reads").inc(),
            }
        }
        total
    }

    fn enable_delta_tracking(&mut self) {
        self.deltas_enabled = true;
        for idx in 0..self.slots.len() {
            self.seq += 1;
            let req = Request::Track { seq: self.seq };
            if let Err(e) = self.send_expect_ack(idx, req) {
                // The trait method is infallible; park the error for
                // the next fallible call (in practice the
                // `run_initial_join` that immediately follows).
                self.deferred = Some(e);
                return;
            }
        }
    }

    fn take_result_changes(&mut self) -> Option<Vec<PairKey>> {
        if !self.deltas_enabled {
            return None;
        }
        if self.pending_none {
            self.pending.clear();
            self.pending_none = false;
            return None;
        }
        let mut out = std::mem::take(&mut self.pending);
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    fn pair_status_at(&self, pair: PairKey, t: Time) -> PairStatus {
        let (Some(sa), Some(sb)) = (self.router.shard_of(pair.0), self.router.shard_of(pair.1))
        else {
            return PairStatus::default();
        };
        let Some(&idx) = self.slot_of.get(&(sa, sb)) else {
            // Pruned by the join plan: the policy guarantees the pair
            // can never be active at an observable time.
            return PairStatus::default();
        };
        let mut link = self.slots[idx].lock();
        match self.call_link(idx, &mut link, &Request::PairStatusAt { pair, t }) {
            Ok(Response::Status(status)) => status,
            _ => {
                self.obs.counter("dist.rpc.dropped_reads").inc();
                PairStatus::default()
            }
        }
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        publish_engine_totals(&self.obs, self.counters(), None, None);
        self.obs
            .counter("dist.migrations")
            .store(self.router.migrations());
        self.obs.gauge("dist.workers").set(self.slots.len() as i64);
        let mut history_total = 0usize;
        for (idx, slot) in self.slots.iter().enumerate() {
            let link = slot.lock();
            history_total += link.history.len();
            self.obs
                .gauge(&format!("dist.worker.{idx}.acked_seq"))
                .set(link.acked_seq as i64);
        }
        self.obs
            .gauge("dist.history_requests")
            .set(history_total as i64);
        for (shard, (&a, &b)) in self.population_a.iter().zip(&self.population_b).enumerate() {
            self.obs
                .gauge(&format!("dist.population.a.{shard}"))
                .set(a as i64);
            self.obs
                .gauge(&format!("dist.population.b.{shard}"))
                .set(b as i64);
        }
    }
}
