//! Property tests: the Bˣ-tree must match a shadow map through arbitrary
//! op sequences and answer timeslice queries exactly.

use std::collections::HashMap;
use std::sync::Arc;

use cij_bx::{BxConfig, BxTree};
use cij_geom::{MovingRect, Rect, Time};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::ObjectId;
use proptest::prelude::*;

const SPACE: f64 = 500.0;
const MAX_SPEED: f64 = 4.0;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
    },
    Update {
        pick: usize,
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
    },
    Remove {
        pick: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let coord = 0.0..SPACE - 2.0;
    let vel = -MAX_SPEED..MAX_SPEED;
    prop_oneof![
        3 => (coord.clone(), coord.clone(), vel.clone(), vel.clone())
            .prop_map(|(x, y, vx, vy)| Op::Insert { x, y, vx, vy }),
        2 => (any::<usize>(), coord.clone(), coord, vel.clone(), vel)
            .prop_map(|(pick, x, y, vx, vy)| Op::Update { pick, x, y, vx, vy }),
        1 => any::<usize>().prop_map(|pick| Op::Remove { pick }),
    ]
}

fn mk(x: f64, y: f64, vx: f64, vy: f64, t: Time) -> MovingRect {
    MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, vy], t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_ops_match_shadow(
        ops in proptest::collection::vec(arb_op(), 1..120),
        probe in (0.0..400.0f64, 0.0..400.0f64, 0.0..59.0f64),
    ) {
        let pool =
            BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::with_capacity(128));
        let config = BxConfig { space: SPACE, max_speed: MAX_SPEED, max_extent: 1.0, ..BxConfig::default() };
        let mut bx = BxTree::new(pool, config);
        let mut shadow: HashMap<ObjectId, (MovingRect, Time)> = HashMap::new();
        let mut live: Vec<ObjectId> = Vec::new();
        let mut next_id = 0u64;
        let mut now = 0.0;

        for (step, op) in ops.iter().enumerate() {
            // Advance slowly so partitions rotate within the run.
            now = step as f64 * 0.8;
            match op {
                Op::Insert { x, y, vx, vy } => {
                    let oid = ObjectId(next_id);
                    next_id += 1;
                    let m = mk(*x, *y, *vx, *vy, now);
                    bx.insert(oid, m, now).unwrap();
                    shadow.insert(oid, (m, now));
                    live.push(oid);
                }
                Op::Update { pick, x, y, vx, vy } => {
                    if live.is_empty() { continue; }
                    let oid = live[pick % live.len()];
                    let (old, t_old) = shadow[&oid];
                    let new = mk(*x, *y, *vx, *vy, now);
                    bx.update(oid, &old, t_old, new, now).unwrap();
                    shadow.insert(oid, (new, now));
                }
                Op::Remove { pick } => {
                    if live.is_empty() { continue; }
                    let idx = pick % live.len();
                    let oid = live.swap_remove(idx);
                    let (old, t_old) = shadow.remove(&oid).unwrap();
                    bx.remove(oid, &old, t_old).unwrap();
                }
            }
        }
        prop_assert_eq!(bx.len(), shadow.len());
        bx.validate().unwrap();

        // Timeslice query at a future instant matches brute force.
        let (px, py, dt) = probe;
        let t = now + dt;
        let w = Rect::new([px, py], [px + 80.0, py + 80.0]);
        let got = bx.range_at(&w, t).unwrap();
        let mut expect: Vec<ObjectId> = shadow
            .iter()
            .filter(|(_, (m, _))| m.at(t).intersects(&w))
            .map(|(o, _)| *o)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
