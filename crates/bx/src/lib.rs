//! # cij-bx — a disk-resident Bˣ-tree
//!
//! The Bˣ-tree (Jensen, Lin, Ooi — VLDB 2004, the paper's reference \[8\])
//! is the index whose time-bucket discipline §IV-C borrows for the
//! MTB-tree ("a similar idea as used in the Bˣ-tree can be exploited…
//! following the rationale of the Bˣ-tree, we used T_M/2 as the length
//! of a time bucket"). Implementing it serves two purposes here:
//!
//! * it grounds the MTB design decision in the structure it came from,
//!   with a benchmark contrasting the two index families' update and
//!   query costs (the classic Bˣ-vs-TPR trade-off: cheaper updates,
//!   costlier queries);
//! * it exercises the storage substrate with a second, very different
//!   disk layout — a B⁺-tree over space-filling-curve keys.
//!
//! Structure: time is split into buckets of `T_M / 2`; an object updated
//! in bucket `i` is stored under partition `i % p` with its position
//! *extrapolated to the bucket's label time* (the bucket end), linearized
//! on a Z-order curve. A window query at time `t` is answered per live
//! partition by **enlarging** the window with the maximum object speed
//! times the (label − query) time gap, decomposing the enlarged window
//! into Z-ranges, scanning the B⁺-tree, and filtering candidates against
//! their exact stored trajectories.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bplus;
mod bxtree;
mod zorder;

pub use bplus::BPlusTree;
pub use bxtree::{BxConfig, BxTree};
pub use zorder::{z_decode, z_decompose, z_encode, GRID_BITS};
