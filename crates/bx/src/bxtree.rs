//! The Bˣ-tree proper: time-partitioned B⁺-trees over Z-order keys.
//!
//! An object updated at time `t_u` lands in the partition of the time
//! bucket containing `t_u` (bucket length `T_M / 2`, like the paper's
//! MTB-tree); its key is the Z-value of its position **extrapolated to
//! the bucket's label time** (the bucket end). Queries at time `t`
//! consult every live partition: the query window is enlarged by the
//! maximum object speed times `|label − t|` plus the maximum object
//! extent (the Bˣ-tree indexes points; rectangles enter via their
//! centers), decomposed into Z-ranges, scanned, and candidates filtered
//! against their exact stored trajectories — enlargement guarantees no
//! false negatives, the filter removes the false positives.

use std::collections::BTreeMap;

use cij_geom::{MovingRect, Rect, Time, TimeInterval};
use cij_storage::BufferPool;
use cij_tpr::{ObjectId, TprError, TprResult};

use crate::bplus::BPlusTree;
use crate::zorder::{z_decompose, z_encode, GRID_BITS};

/// Value bytes per leaf entry: oid (8) + 9 × f64 trajectory (72).
const VALUE_BYTES: usize = 80;

/// Bˣ-tree configuration.
#[derive(Debug, Clone, Copy)]
pub struct BxConfig {
    /// Maximum update interval `T_M` (Table I default: 60).
    pub t_m: Time,
    /// Buckets per `T_M` (Bˣ convention: 2).
    pub buckets_per_tm: u32,
    /// Side length of the space domain (for grid snapping).
    pub space: f64,
    /// Maximum object speed (for query enlargement).
    pub max_speed: f64,
    /// Maximum object side length (for query enlargement; the index
    /// stores centers).
    pub max_extent: f64,
    /// Z-range budget per query and partition.
    pub max_ranges: usize,
}

impl Default for BxConfig {
    fn default() -> Self {
        Self {
            t_m: 60.0,
            buckets_per_tm: 2,
            space: 1000.0,
            max_speed: 3.0,
            max_extent: 1.0,
            max_ranges: 64,
        }
    }
}

struct Partition {
    tree: BPlusTree<VALUE_BYTES>,
    /// Label time: positions in this partition are stored extrapolated
    /// to this timestamp (the bucket end).
    label: Time,
}

/// A disk-resident Bˣ-tree over moving rectangles.
///
/// ```
/// use std::sync::Arc;
/// use cij_bx::{BxConfig, BxTree};
/// use cij_geom::{MovingRect, Rect};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::ObjectId;
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut bx = BxTree::new(pool, BxConfig::default());
///
/// // A unit square moving right at speed 2, registered at t = 0.
/// let car = MovingRect::rigid(Rect::new([100.0, 100.0], [101.0, 101.0]), [2.0, 0.0], 0.0);
/// bx.insert(ObjectId(7), car, 0.0)?;
///
/// // Timeslice window query at t = 10 (car is near x = 120): the key
/// // was stored at the bucket's label time, so the query is answered by
/// // enlarging the window with max_speed × |label − t| and filtering.
/// let hits = bx.range_at(&Rect::new([118.0, 99.0], [123.0, 102.0]), 10.0)?;
/// assert_eq!(hits, vec![ObjectId(7)]);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub struct BxTree {
    pool: BufferPool,
    config: BxConfig,
    bucket_len: Time,
    partitions: BTreeMap<i64, Partition>,
    len: usize,
}

impl BxTree {
    /// Creates an empty Bˣ-tree.
    ///
    /// # Panics
    /// Panics on non-positive `t_m`, zero buckets, or degenerate space.
    #[must_use]
    pub fn new(pool: BufferPool, config: BxConfig) -> Self {
        assert!(config.t_m > 0.0, "T_M must be positive");
        assert!(
            config.buckets_per_tm > 0,
            "need at least one bucket per T_M"
        );
        assert!(config.space > 0.0, "degenerate space");
        let bucket_len = config.t_m / f64::from(config.buckets_per_tm);
        Self {
            pool,
            config,
            bucket_len,
            partitions: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live partitions (≤ `buckets_per_tm + 1` under the
    /// heartbeat discipline).
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    fn bucket_of(&self, t: Time) -> i64 {
        (t / self.bucket_len).floor() as i64
    }

    fn label_of(&self, bucket: i64) -> Time {
        (bucket + 1) as f64 * self.bucket_len
    }

    /// Grid cell of a coordinate (snap-to-grid with clamping; objects
    /// may drift slightly out of the domain between updates).
    fn cell(&self, coord: f64) -> u16 {
        let cells = f64::from(1u32 << GRID_BITS);
        let c = (coord / self.config.space * cells).floor();
        c.clamp(0.0, cells - 1.0) as u16
    }

    fn key_for(&self, mbr: &MovingRect, bucket: i64) -> u64 {
        let label = self.label_of(bucket);
        let center = mbr.at(label).center();
        u64::from(z_encode(self.cell(center[0]), self.cell(center[1])))
    }

    fn encode_value(oid: ObjectId, mbr: &MovingRect) -> [u8; VALUE_BYTES] {
        let mut out = [0u8; VALUE_BYTES];
        out[..8].copy_from_slice(&oid.0.to_le_bytes());
        let fields = [
            mbr.lo[0], mbr.lo[1], mbr.hi[0], mbr.hi[1], mbr.vlo[0], mbr.vlo[1], mbr.vhi[0],
            mbr.vhi[1], mbr.t_ref,
        ];
        for (i, f) in fields.iter().enumerate() {
            out[8 + i * 8..16 + i * 8].copy_from_slice(&f.to_le_bytes());
        }
        out
    }

    fn decode_value(value: &[u8; VALUE_BYTES]) -> (ObjectId, MovingRect) {
        let oid = ObjectId(u64::from_le_bytes(value[..8].try_into().expect("8 bytes")));
        let mut f = [0.0f64; 9];
        for (i, slot) in f.iter_mut().enumerate() {
            *slot = f64::from_le_bytes(value[8 + i * 8..16 + i * 8].try_into().expect("8 bytes"));
        }
        (
            oid,
            MovingRect::new([f[0], f[1]], [f[2], f[3]], [f[4], f[5]], [f[6], f[7]], f[8]),
        )
    }

    /// Inserts `oid` updated at `updated_at` with trajectory `mbr`.
    pub fn insert(&mut self, oid: ObjectId, mbr: MovingRect, updated_at: Time) -> TprResult<()> {
        let bucket = self.bucket_of(updated_at);
        let key = self.key_for(&mbr, bucket);
        let label = self.label_of(bucket);
        let pool = self.pool.clone();
        let partition = match self.partitions.entry(bucket) {
            std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => v.insert(Partition {
                tree: BPlusTree::new(pool)?,
                label,
            }),
        };
        partition.tree.insert(key, Self::encode_value(oid, &mbr))?;
        self.len += 1;
        Ok(())
    }

    /// Removes `oid`, located via its previous trajectory and update
    /// time (which names its partition and key).
    pub fn remove(
        &mut self,
        oid: ObjectId,
        old_mbr: &MovingRect,
        updated_at: Time,
    ) -> TprResult<()> {
        let bucket = self.bucket_of(updated_at);
        let key = self.key_for(old_mbr, bucket);
        let partition = self
            .partitions
            .get_mut(&bucket)
            .ok_or(TprError::ObjectNotFound(oid))?;
        let removed = partition
            .tree
            .delete(key, |v| Self::decode_value(v).0 == oid)?;
        if !removed {
            return Err(TprError::ObjectNotFound(oid));
        }
        self.len -= 1;
        if partition.tree.is_empty() {
            let p = self.partitions.remove(&bucket).expect("just accessed");
            p.tree.free_all()?;
        }
        Ok(())
    }

    /// The paper-style update: remove under the old registration, insert
    /// under the new one.
    pub fn update(
        &mut self,
        oid: ObjectId,
        old_mbr: &MovingRect,
        old_updated_at: Time,
        new_mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        self.remove(oid, old_mbr, old_updated_at)?;
        self.insert(oid, new_mbr, now)
    }

    /// Objects whose rectangles intersect `window` at instant `t`
    /// (timeslice query), exact.
    pub fn range_at(&self, window: &Rect, t: Time) -> TprResult<Vec<ObjectId>> {
        let mut out = Vec::new();
        for partition in self.partitions.values() {
            // Enlarge by worst-case drift between label time and query
            // time, plus half the maximal extent on each side (keys are
            // center-based).
            let drift =
                self.config.max_speed * (partition.label - t).abs() + self.config.max_extent / 2.0;
            let grown = Rect::new(
                [window.lo[0] - drift, window.lo[1] - drift],
                [window.hi[0] + drift, window.hi[1] + drift],
            );
            let (x0, x1) = (self.cell(grown.lo[0]), self.cell(grown.hi[0]));
            let (y0, y1) = (self.cell(grown.lo[1]), self.cell(grown.hi[1]));
            for (lo, hi) in z_decompose(x0, x1, y0, y1, self.config.max_ranges) {
                for (_, value) in partition.tree.range_scan(u64::from(lo), u64::from(hi))? {
                    let (oid, mbr) = Self::decode_value(&value);
                    if mbr.at(t).intersects(window) {
                        out.push(oid);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Objects whose trajectories intersect `target` within `[t_s, t_e]`
    /// — the maintenance probe, answered by sampling-free enlargement
    /// over the window (drift bound uses the farther window end).
    pub fn intersect_window(
        &self,
        target: &MovingRect,
        t_s: Time,
        t_e: Time,
    ) -> TprResult<Vec<(ObjectId, TimeInterval)>> {
        assert!(t_e.is_finite(), "Bx probes require a bounded window");
        let mut out = Vec::new();
        // Swept region of the target over the window.
        let (r0, r1) = (target.at(t_s), target.at(t_e));
        let swept = Rect::new(
            [r0.lo[0].min(r1.lo[0]), r0.lo[1].min(r1.lo[1])],
            [r0.hi[0].max(r1.hi[0]), r0.hi[1].max(r1.hi[1])],
        );
        for partition in self.partitions.values() {
            let worst_gap = (partition.label - t_s)
                .abs()
                .max((partition.label - t_e).abs());
            let drift = self.config.max_speed * worst_gap + self.config.max_extent / 2.0;
            let grown = Rect::new(
                [swept.lo[0] - drift, swept.lo[1] - drift],
                [swept.hi[0] + drift, swept.hi[1] + drift],
            );
            let (x0, x1) = (self.cell(grown.lo[0]), self.cell(grown.hi[0]));
            let (y0, y1) = (self.cell(grown.lo[1]), self.cell(grown.hi[1]));
            for (lo, hi) in z_decompose(x0, x1, y0, y1, self.config.max_ranges) {
                for (_, value) in partition.tree.range_scan(u64::from(lo), u64::from(hi))? {
                    let (oid, mbr) = Self::decode_value(&value);
                    if let Some(iv) = mbr.intersect_interval(target, t_s, t_e) {
                        out.push((oid, iv));
                    }
                }
            }
        }
        out.sort_by_key(|(o, _)| *o);
        out.dedup_by_key(|(o, _)| *o);
        Ok(out)
    }

    /// Validates every partition's B⁺-tree and the aggregate count.
    pub fn validate(&self) -> TprResult<()> {
        let mut total = 0;
        for p in self.partitions.values() {
            p.tree.validate()?;
            total += p.tree.len();
        }
        if total != self.len {
            return Err(TprError::CorruptNode {
                detail: format!("Bx len {} but partitions hold {total}", self.len),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_storage::{BufferPoolConfig, InMemoryStore};
    use std::sync::Arc;

    fn pool() -> BufferPool {
        BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(256),
        )
    }

    fn obj(x: f64, y: f64, vx: f64, vy: f64, t: Time) -> MovingRect {
        MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, vy], t)
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut bx = BxTree::new(pool(), BxConfig::default());
        let m = obj(100.0, 200.0, 1.0, -1.0, 0.0);
        bx.insert(ObjectId(1), m, 0.0).unwrap();
        assert_eq!(bx.len(), 1);
        bx.validate().unwrap();
        let hits = bx
            .range_at(&Rect::new([99.0, 199.0], [102.0, 202.0]), 0.0)
            .unwrap();
        assert_eq!(hits, vec![ObjectId(1)]);
        // At t = 30 the object is near (130, 170).
        let hits = bx
            .range_at(&Rect::new([129.0, 169.0], [132.0, 172.0]), 30.0)
            .unwrap();
        assert_eq!(hits, vec![ObjectId(1)]);
        bx.remove(ObjectId(1), &m, 0.0).unwrap();
        assert!(bx.is_empty());
        assert_eq!(bx.partition_count(), 0, "empty partition dropped");
    }

    #[test]
    fn remove_unknown_errors() {
        let mut bx = BxTree::new(pool(), BxConfig::default());
        let m = obj(1.0, 1.0, 0.0, 0.0, 0.0);
        assert!(matches!(
            bx.remove(ObjectId(1), &m, 0.0),
            Err(TprError::ObjectNotFound(_))
        ));
        bx.insert(ObjectId(1), m, 0.0).unwrap();
        assert!(matches!(
            bx.remove(ObjectId(2), &m, 0.0),
            Err(TprError::ObjectNotFound(_))
        ));
    }

    #[test]
    fn partitions_rotate_with_update_time() {
        let mut bx = BxTree::new(pool(), BxConfig::default());
        bx.insert(ObjectId(1), obj(10.0, 10.0, 0.0, 0.0, 0.0), 0.0)
            .unwrap();
        bx.insert(ObjectId(2), obj(20.0, 20.0, 0.0, 0.0, 35.0), 35.0)
            .unwrap();
        assert_eq!(bx.partition_count(), 2);
        // Object 1 re-registers at t = 40: partition 0 empties and drops.
        bx.update(
            ObjectId(1),
            &obj(10.0, 10.0, 0.0, 0.0, 0.0),
            0.0,
            obj(11.0, 10.0, 0.0, 0.0, 40.0),
            40.0,
        )
        .unwrap();
        assert_eq!(bx.partition_count(), 1);
        bx.validate().unwrap();
    }

    #[test]
    fn range_matches_brute_force_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut bx = BxTree::new(pool(), BxConfig::default());
        let mut shadow = Vec::new();
        for i in 0..800u64 {
            let updated_at = if i % 2 == 0 { 0.0 } else { 35.0 };
            let m = obj(
                rng.gen_range(0.0..990.0),
                rng.gen_range(0.0..990.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                updated_at,
            );
            bx.insert(ObjectId(i), m, updated_at).unwrap();
            shadow.push((ObjectId(i), m));
        }
        bx.validate().unwrap();
        for t in [40.0, 50.0, 59.0] {
            for _ in 0..20 {
                let cx = rng.gen_range(0.0..900.0);
                let cy = rng.gen_range(0.0..900.0);
                let w = Rect::new([cx, cy], [cx + 80.0, cy + 80.0]);
                let got = bx.range_at(&w, t).unwrap();
                let mut expect: Vec<ObjectId> = shadow
                    .iter()
                    .filter(|(_, m)| m.at(t).intersects(&w))
                    .map(|(o, _)| *o)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "t={t} w={w:?}");
            }
        }
    }

    #[test]
    fn intersect_window_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let mut bx = BxTree::new(pool(), BxConfig::default());
        let mut shadow = Vec::new();
        for i in 0..500u64 {
            let m = obj(
                rng.gen_range(0.0..990.0),
                rng.gen_range(0.0..990.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                0.0,
            );
            bx.insert(ObjectId(i), m, 0.0).unwrap();
            shadow.push((ObjectId(i), m));
        }
        for _ in 0..15 {
            let probe = obj(
                rng.gen_range(0.0..990.0),
                rng.gen_range(0.0..990.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                0.0,
            );
            let got = bx.intersect_window(&probe, 0.0, 60.0).unwrap();
            let mut expect: Vec<(ObjectId, TimeInterval)> = shadow
                .iter()
                .filter_map(|(o, m)| m.intersect_interval(&probe, 0.0, 60.0).map(|iv| (*o, iv)))
                .collect();
            expect.sort_by_key(|(o, _)| *o);
            assert_eq!(got.len(), expect.len());
            for ((go, gi), (eo, ei)) in got.iter().zip(&expect) {
                assert_eq!(go, eo);
                assert!((gi.start - ei.start).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn heartbeat_discipline_bounds_partitions() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let mut bx = BxTree::new(pool(), BxConfig::default());
        let mut state: Vec<(ObjectId, MovingRect, Time)> = (0..100u64)
            .map(|i| {
                let m = obj(
                    rng.gen_range(0.0..990.0),
                    rng.gen_range(0.0..990.0),
                    1.0,
                    0.0,
                    0.0,
                );
                (ObjectId(i), m, 0.0)
            })
            .collect();
        for (oid, m, t) in &state {
            bx.insert(*oid, *m, *t).unwrap();
        }
        for tick in 1..=240u32 {
            let now = f64::from(tick);
            for (oid, m, t) in state.iter_mut() {
                if now - *t >= 60.0 || rng.gen_bool(0.02) {
                    let new = obj(
                        rng.gen_range(0.0..990.0),
                        rng.gen_range(0.0..990.0),
                        rng.gen_range(-3.0..3.0),
                        0.0,
                        now,
                    );
                    bx.update(*oid, m, *t, new, now).unwrap();
                    *m = new;
                    *t = now;
                }
            }
            assert!(
                bx.partition_count() <= 3,
                "{} partitions at t={now}",
                bx.partition_count()
            );
        }
        bx.validate().unwrap();
        assert_eq!(bx.len(), 100);
    }
}
