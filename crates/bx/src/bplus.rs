//! A disk-resident B⁺-tree with fixed-size values and duplicate-key
//! support — the per-partition structure of the Bˣ-tree.
//!
//! Layout (one node per 4 KB page):
//! * internal: `[magic u16 | kind u8 | pad u8 | count u16]`, `count`
//!   keys (`u64`) and `count + 1` child page ids (`u32`);
//! * leaf: same header plus a `next_leaf` pointer (`u32`), then `count`
//!   `(key u64, value [u8; V])` entries, sorted by key.
//!
//! Deletion is *lazy* (no merge/steal): the Bˣ discipline drops whole
//! partitions when their time bucket expires ([`BPlusTree::free_all`]),
//! so under-full leaves live at most one bucket. Range scans follow the
//! leaf chain, which keeps them correct regardless of fill.

use cij_storage::codec::{PageReader, PageWriter};
use cij_storage::{BufferPool, PageId, StorageError, StorageResult, PAGE_SIZE};

const MAGIC: u16 = 0x4278; // "Bx"
const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;
const HEADER: usize = 6;

/// A B⁺-tree over `u64` keys with `V`-byte values (duplicates allowed).
///
/// ```
/// use std::sync::Arc;
/// use cij_bx::BPlusTree;
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut tree: BPlusTree<8> = BPlusTree::new(pool)?;
/// for k in (0..1000u64).rev() {
///     tree.insert(k, k.to_le_bytes())?;
/// }
/// let hits = tree.range_scan(10, 14)?;
/// assert_eq!(hits.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![10, 11, 12, 13, 14]);
/// assert!(tree.delete(12, |_| true)?);
/// assert_eq!(tree.range_scan(10, 14)?.len(), 4);
/// # Ok::<(), cij_storage::StorageError>(())
/// ```
pub struct BPlusTree<const V: usize> {
    pool: BufferPool,
    root: PageId,
    height: u32,
    len: usize,
}

struct LeafNode<const V: usize> {
    next: PageId,
    entries: Vec<(u64, [u8; V])>,
}

struct InternalNode {
    keys: Vec<u64>,
    children: Vec<PageId>,
}

enum AnyNode<const V: usize> {
    Leaf(LeafNode<V>),
    Internal(InternalNode),
}

impl<const V: usize> BPlusTree<V> {
    /// Max entries per leaf page.
    #[must_use]
    pub fn leaf_capacity() -> usize {
        (PAGE_SIZE - HEADER - 4) / (8 + V)
    }

    /// Max keys per internal page.
    #[must_use]
    pub fn internal_capacity() -> usize {
        // count keys (8 B) + count+1 children (4 B)
        (PAGE_SIZE - HEADER - 4) / 12
    }

    /// Creates an empty tree (one empty leaf as root).
    pub fn new(pool: BufferPool) -> StorageResult<Self> {
        assert!(Self::leaf_capacity() >= 4, "value too large for a page");
        let root = pool.allocate();
        let tree = Self {
            pool,
            root,
            height: 1,
            len: 0,
        };
        tree.write_leaf(
            root,
            &LeafNode {
                next: PageId::INVALID,
                entries: Vec::new(),
            },
        )?;
        Ok(tree)
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer pool this tree reads through.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    // ------------------------------------------------------------------
    // Codec
    // ------------------------------------------------------------------

    fn read_any(&self, page: PageId) -> StorageResult<AnyNode<V>> {
        self.pool.read(page, |buf| {
            let mut r = PageReader::new(buf);
            let magic = r.get_u16()?;
            if magic != MAGIC {
                return Err(StorageError::Corrupt(format!("bad b+ magic {magic:#x}")));
            }
            let kind = r.get_u8()?;
            let _pad = r.get_u8()?;
            let count = r.get_u16()? as usize;
            match kind {
                KIND_LEAF => {
                    let next = PageId(r.get_u32()?);
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let key = r.get_u64()?;
                        let mut value = [0u8; V];
                        value.copy_from_slice(r.get_bytes(V)?);
                        entries.push((key, value));
                    }
                    Ok(AnyNode::Leaf(LeafNode { next, entries }))
                }
                KIND_INTERNAL => {
                    let mut keys = Vec::with_capacity(count);
                    for _ in 0..count {
                        keys.push(r.get_u64()?);
                    }
                    let mut children = Vec::with_capacity(count + 1);
                    for _ in 0..=count {
                        children.push(PageId(r.get_u32()?));
                    }
                    Ok(AnyNode::Internal(InternalNode { keys, children }))
                }
                other => Err(StorageError::Corrupt(format!("bad b+ node kind {other}"))),
            }
        })?
    }

    fn write_leaf(&self, page: PageId, node: &LeafNode<V>) -> StorageResult<()> {
        let mut buf = cij_storage::zeroed_page();
        let mut w = PageWriter::new(&mut buf);
        w.put_u16(MAGIC)?;
        w.put_u8(KIND_LEAF)?;
        w.put_u8(0)?;
        w.put_u16(node.entries.len() as u16)?;
        w.put_u32(node.next.0)?;
        for (k, v) in &node.entries {
            w.put_u64(*k)?;
            w.put_bytes(v)?;
        }
        self.pool.write(page, &buf)
    }

    fn write_internal(&self, page: PageId, node: &InternalNode) -> StorageResult<()> {
        debug_assert_eq!(node.children.len(), node.keys.len() + 1);
        let mut buf = cij_storage::zeroed_page();
        let mut w = PageWriter::new(&mut buf);
        w.put_u16(MAGIC)?;
        w.put_u8(KIND_INTERNAL)?;
        w.put_u8(0)?;
        w.put_u16(node.keys.len() as u16)?;
        for k in &node.keys {
            w.put_u64(*k)?;
        }
        for c in &node.children {
            w.put_u32(c.0)?;
        }
        self.pool.write(page, &buf)
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Inserts `(key, value)`; duplicate keys are allowed and coexist.
    pub fn insert(&mut self, key: u64, value: [u8; V]) -> StorageResult<()> {
        if let Some((sep, right)) = self.insert_rec(self.root, key, value)? {
            // Root split.
            let new_root = self.pool.allocate();
            let node = InternalNode {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.write_internal(new_root, &node)?;
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Recursive insert; returns `(separator, new right sibling)` when
    /// the child split.
    fn insert_rec(
        &mut self,
        page: PageId,
        key: u64,
        value: [u8; V],
    ) -> StorageResult<Option<(u64, PageId)>> {
        match self.read_any(page)? {
            AnyNode::Leaf(mut leaf) => {
                let pos = leaf.entries.partition_point(|(k, _)| *k <= key);
                leaf.entries.insert(pos, (key, value));
                if leaf.entries.len() <= Self::leaf_capacity() {
                    self.write_leaf(page, &leaf)?;
                    return Ok(None);
                }
                // Split: right half to a new page, chained after `page`.
                let mid = leaf.entries.len() / 2;
                let right_entries = leaf.entries.split_off(mid);
                let right_page = self.pool.allocate();
                let right = LeafNode {
                    next: leaf.next,
                    entries: right_entries,
                };
                leaf.next = right_page;
                let sep = right.entries[0].0;
                self.write_leaf(right_page, &right)?;
                self.write_leaf(page, &leaf)?;
                Ok(Some((sep, right_page)))
            }
            AnyNode::Internal(mut node) => {
                let idx = node.keys.partition_point(|k| *k <= key);
                let child = node.children[idx];
                let Some((sep, right)) = self.insert_rec(child, key, value)? else {
                    return Ok(None);
                };
                node.keys.insert(idx, sep);
                node.children.insert(idx + 1, right);
                if node.keys.len() <= Self::internal_capacity() {
                    self.write_internal(page, &node)?;
                    return Ok(None);
                }
                let mid = node.keys.len() / 2;
                let up = node.keys[mid];
                let right_keys = node.keys.split_off(mid + 1);
                node.keys.pop(); // `up` moves up, not right
                let right_children = node.children.split_off(mid + 1);
                let right_page = self.pool.allocate();
                self.write_internal(
                    right_page,
                    &InternalNode {
                        keys: right_keys,
                        children: right_children,
                    },
                )?;
                self.write_internal(page, &node)?;
                Ok(Some((up, right_page)))
            }
        }
    }

    /// Deletes the first entry with `key` whose value satisfies
    /// `matches`. Returns whether something was removed. Lazy: no
    /// rebalancing (see module docs).
    pub fn delete(&mut self, key: u64, matches: impl Fn(&[u8; V]) -> bool) -> StorageResult<bool> {
        let mut page = self.leftmost_leaf_for(key)?;
        // Walk the leaf chain while keys could still match.
        loop {
            let AnyNode::Leaf(mut leaf) = self.read_any(page)? else {
                return Err(StorageError::Corrupt("leaf walk hit internal node".into()));
            };
            if let Some(pos) = leaf
                .entries
                .iter()
                .position(|(k, v)| *k == key && matches(v))
            {
                leaf.entries.remove(pos);
                self.write_leaf(page, &leaf)?;
                self.len -= 1;
                return Ok(true);
            }
            if leaf.entries.last().is_some_and(|(k, _)| *k > key) || !leaf.next.is_valid() {
                return Ok(false);
            }
            page = leaf.next;
        }
    }

    /// All entries with keys in `[lo, hi]`, in key order.
    pub fn range_scan(&self, lo: u64, hi: u64) -> StorageResult<Vec<(u64, [u8; V])>> {
        let mut out = Vec::new();
        let mut page = self.leftmost_leaf_for(lo)?;
        loop {
            let AnyNode::Leaf(leaf) = self.read_any(page)? else {
                return Err(StorageError::Corrupt("leaf walk hit internal node".into()));
            };
            for &(k, v) in &leaf.entries {
                if k > hi {
                    return Ok(out);
                }
                if k >= lo {
                    out.push((k, v));
                }
            }
            if !leaf.next.is_valid() {
                return Ok(out);
            }
            page = leaf.next;
        }
    }

    /// The leaf that would contain the *first* entry with key ≥ `key`
    /// among duplicates (descend left of equal separators).
    fn leftmost_leaf_for(&self, key: u64) -> StorageResult<PageId> {
        let mut page = self.root;
        loop {
            match self.read_any(page)? {
                AnyNode::Leaf(_) => return Ok(page),
                AnyNode::Internal(node) => {
                    let idx = node.keys.partition_point(|k| *k < key);
                    page = node.children[idx];
                }
            }
        }
    }

    /// Frees every page of the tree (the Bˣ partition rollover).
    pub fn free_all(self) -> StorageResult<()> {
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            if let AnyNode::Internal(node) = self.read_any(page)? {
                stack.extend(node.children);
            }
            self.pool.free(page)?;
        }
        Ok(())
    }

    /// Structural check: sorted leaves, coherent chain, `len` matches.
    /// Test support.
    pub fn validate(&self) -> StorageResult<()> {
        // Walk the whole chain from the global leftmost leaf.
        let mut page = self.leftmost_leaf_for(0)?;
        let mut count = 0usize;
        let mut prev_key = 0u64;
        let mut first = true;
        loop {
            let AnyNode::Leaf(leaf) = self.read_any(page)? else {
                return Err(StorageError::Corrupt("chain hit internal node".into()));
            };
            for &(k, _) in &leaf.entries {
                if !first && k < prev_key {
                    return Err(StorageError::Corrupt(format!(
                        "key order violation: {k} after {prev_key}"
                    )));
                }
                prev_key = k;
                first = false;
                count += 1;
            }
            if !leaf.next.is_valid() {
                break;
            }
            page = leaf.next;
        }
        if count != self.len {
            return Err(StorageError::Corrupt(format!(
                "len {} but chain holds {count}",
                self.len
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_storage::{BufferPoolConfig, InMemoryStore};
    use std::sync::Arc;

    fn tree() -> BPlusTree<8> {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(128),
        );
        BPlusTree::new(pool).unwrap()
    }

    fn val(x: u64) -> [u8; 8] {
        x.to_le_bytes()
    }

    #[test]
    fn capacities_are_sane() {
        assert!(BPlusTree::<8>::leaf_capacity() > 200);
        assert!(BPlusTree::<80>::leaf_capacity() >= 40);
        assert!(BPlusTree::<8>::internal_capacity() > 300);
    }

    #[test]
    fn insert_scan_roundtrip() {
        let mut t = tree();
        for k in (0..2000u64).rev() {
            t.insert(k * 2, val(k)).unwrap();
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 2000);
        let all = t.range_scan(0, u64::MAX).unwrap();
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        // Point-ish range.
        let some = t.range_scan(100, 110).unwrap();
        assert_eq!(
            some.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![100, 102, 104, 106, 108, 110]
        );
    }

    #[test]
    fn duplicates_coexist_and_delete_individually() {
        let mut t = tree();
        for i in 0..50u64 {
            t.insert(7, val(i)).unwrap();
        }
        t.insert(6, val(999)).unwrap();
        t.insert(8, val(999)).unwrap();
        t.validate().unwrap();
        assert_eq!(t.range_scan(7, 7).unwrap().len(), 50);
        // Delete a specific duplicate.
        assert!(t.delete(7, |v| *v == val(25)).unwrap());
        assert!(!t.delete(7, |v| *v == val(25)).unwrap(), "already gone");
        assert_eq!(t.range_scan(7, 7).unwrap().len(), 49);
        t.validate().unwrap();
    }

    #[test]
    fn duplicates_spanning_leaf_splits() {
        let mut t = tree();
        let n = BPlusTree::<8>::leaf_capacity() as u64 * 3;
        for i in 0..n {
            t.insert(42, val(i)).unwrap();
        }
        t.validate().unwrap();
        assert_eq!(t.range_scan(42, 42).unwrap().len(), n as usize);
        // Every duplicate individually deletable.
        for i in 0..n {
            assert!(t.delete(42, |v| *v == val(i)).unwrap(), "dup {i}");
        }
        assert!(t.is_empty());
    }

    #[test]
    fn delete_missing_returns_false() {
        let mut t = tree();
        t.insert(1, val(1)).unwrap();
        assert!(!t.delete(2, |_| true).unwrap());
        assert!(!t.delete(1, |v| *v == val(9)).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn random_ops_match_shadow_multimap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = tree();
        let mut shadow: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for step in 0..20_000 {
            let key = rng.gen_range(0..500u64);
            if rng.gen_bool(0.6) {
                let v = rng.gen::<u64>();
                t.insert(key, val(v)).unwrap();
                shadow.entry(key).or_default().push(v);
            } else if let Some(vs) = shadow.get_mut(&key) {
                if let Some(&v) = vs.first() {
                    assert!(t.delete(key, |b| *b == val(v)).unwrap(), "step {step}");
                    vs.remove(0);
                    if vs.is_empty() {
                        shadow.remove(&key);
                    }
                }
            }
            if step % 2500 == 0 {
                t.validate().unwrap();
            }
        }
        t.validate().unwrap();
        // Full comparison.
        let expected: usize = shadow.values().map(Vec::len).sum();
        assert_eq!(t.len(), expected);
        for (k, vs) in &shadow {
            let got = t.range_scan(*k, *k).unwrap();
            assert_eq!(got.len(), vs.len(), "key {k}");
            let mut got_vals: Vec<u64> = got.iter().map(|(_, v)| u64::from_le_bytes(*v)).collect();
            let mut want = vs.clone();
            got_vals.sort_unstable();
            want.sort_unstable();
            assert_eq!(got_vals, want, "key {k}");
        }
    }

    #[test]
    fn free_all_releases_pages() {
        let store = Arc::new(InMemoryStore::new());
        let pool = BufferPool::new(store.clone(), BufferPoolConfig::with_capacity(64));
        let mut t = BPlusTree::<8>::new(pool).unwrap();
        for k in 0..5000u64 {
            t.insert(k, val(k)).unwrap();
        }
        use cij_storage::PageStore;
        assert!(store.live_pages() > 10);
        t.free_all().unwrap();
        assert_eq!(store.live_pages(), 0);
    }
}
