//! Z-order (Morton) linearization and window decomposition.
//!
//! Positions are snapped to a `2^GRID_BITS × 2^GRID_BITS` grid and their
//! cell coordinates bit-interleaved into one key; a rectangle becomes a
//! small set of contiguous key ranges via quadrant decomposition, which
//! is what lets a B⁺-tree answer spatial window queries.

/// Grid resolution per axis (16 bits ⇒ 65 536 cells per axis; a Z-value
/// fits in 32 bits, leaving ample key space for the partition prefix).
pub const GRID_BITS: u32 = 16;

/// Interleaves two `GRID_BITS`-bit cell coordinates into a Z-value
/// (x in the even bit positions, y in the odd ones).
#[must_use]
pub fn z_encode(x: u16, y: u16) -> u32 {
    part1by1(u32::from(x)) | (part1by1(u32::from(y)) << 1)
}

/// Recovers the cell coordinates of a Z-value.
#[must_use]
pub fn z_decode(z: u32) -> (u16, u16) {
    (compact1by1(z) as u16, compact1by1(z >> 1) as u16)
}

/// Spreads the low 16 bits of `v` into the even bit positions.
fn part1by1(mut v: u32) -> u32 {
    v &= 0x0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Inverse of [`part1by1`].
fn compact1by1(mut v: u32) -> u32 {
    v &= 0x5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF;
    v
}

/// Decomposes the cell rectangle `[x0, x1] × [y0, y1]` (inclusive) into
/// contiguous Z-value ranges, conservatively: the union of the ranges
/// always covers the rectangle, and refinement stops once `max_ranges`
/// ranges have been emitted (a *soft* budget: quadrants still on the
/// stack are then emitted whole, and the final merge pass re-compacts —
/// callers filter candidates against exact geometry anyway).
///
/// Standard quadrant recursion: a quadrant fully inside the query emits
/// its whole contiguous Z-interval; a partial quadrant recurses until
/// the budget would be exceeded, then is emitted whole.
#[must_use]
pub fn z_decompose(x0: u16, x1: u16, y0: u16, y1: u16, max_ranges: usize) -> Vec<(u32, u32)> {
    assert!(x0 <= x1 && y0 <= y1, "inverted cell rect");
    let mut out = Vec::new();
    // (cell-space quadrant: origin + size exponent)
    let mut stack = vec![(0u16, 0u16, GRID_BITS)];
    while let Some((qx, qy, bits)) = stack.pop() {
        let size = 1u32 << bits;
        let (qx1, qy1) = (
            (u32::from(qx) + size - 1) as u16,
            (u32::from(qy) + size - 1) as u16,
        );
        // Disjoint?
        if qx1 < x0 || qx > x1 || qy1 < y0 || qy > y1 {
            continue;
        }
        let fully_inside = qx >= x0 && qx1 <= x1 && qy >= y0 && qy1 <= y1;
        // A 2^b × 2^b Z-aligned quadrant maps to one contiguous range
        // (area computed in u64: the full grid's area overflows u32).
        let lo = z_encode(qx, qy);
        let hi = (u64::from(lo) + ((1u64 << (2 * bits)) - 1)) as u32;
        if fully_inside || bits == 0 || out.len() >= max_ranges {
            out.push((lo, hi));
            continue;
        }
        let half = 1u16 << (bits - 1);
        stack.push((qx, qy, bits - 1));
        stack.push((qx + half, qy, bits - 1));
        stack.push((qx, qy + half, bits - 1));
        stack.push((qx + half, qy + half, bits - 1));
    }
    // Merge adjacent/overlapping ranges for tighter scans.
    out.sort_unstable();
    let mut merged: Vec<(u32, u32)> = Vec::with_capacity(out.len());
    for (lo, hi) in out {
        match merged.last_mut() {
            Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_corners() {
        for (x, y) in [
            (0, 0),
            (u16::MAX, 0),
            (0, u16::MAX),
            (u16::MAX, u16::MAX),
            (12345, 54321),
        ] {
            assert_eq!(z_decode(z_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn z_order_locality_of_quadrants() {
        // The four half-grid quadrants occupy the four contiguous
        // quarters of key space.
        let half = 1u16 << (GRID_BITS - 1);
        assert_eq!(z_encode(0, 0), 0);
        assert_eq!(z_encode(half, 0), 1 << 30);
        assert_eq!(z_encode(0, half), 2 << 30);
        assert_eq!(z_encode(half, half), 3 << 30);
    }

    #[test]
    fn decompose_whole_grid_is_one_range() {
        let r = z_decompose(0, u16::MAX, 0, u16::MAX, 16);
        assert_eq!(r, vec![(0, u32::MAX)]);
    }

    #[test]
    fn decompose_single_cell() {
        let r = z_decompose(7, 7, 9, 9, 16);
        let z = z_encode(7, 9);
        assert_eq!(r, vec![(z, z)]);
    }

    #[test]
    fn decompose_covers_exactly_when_budget_allows() {
        // A Z-aligned 2×2 block is one range.
        let r = z_decompose(4, 5, 6, 7, 64);
        assert_eq!(r.len(), 1);
        let (lo, hi) = r[0];
        assert_eq!(hi - lo, 3);
        for x in 4..=5u16 {
            for y in 6..=7u16 {
                let z = z_encode(x, y);
                assert!(z >= lo && z <= hi);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn roundtrip(x in any::<u16>(), y in any::<u16>()) {
            prop_assert_eq!(z_decode(z_encode(x, y)), (x, y));
        }

        /// Every cell of the rect is covered by some range; cells far
        /// outside are not (unless budget-coarsened, checked by using a
        /// generous budget on small rects).
        #[test]
        fn decomposition_covers_rect(
            x0 in 0u16..1000,
            y0 in 0u16..1000,
            w in 0u16..40,
            h in 0u16..40,
        ) {
            let (x1, y1) = (x0 + w, y0 + h);
            let ranges = z_decompose(x0, x1, y0, y1, 1024);
            let covered = |z: u32| ranges.iter().any(|&(lo, hi)| z >= lo && z <= hi);
            // All inside cells covered (sample corners + a lattice).
            for &x in &[x0, x1, x0 + w / 2] {
                for &y in &[y0, y1, y0 + h / 2] {
                    prop_assert!(covered(z_encode(x, y)), "cell ({x},{y}) uncovered");
                }
            }
            // With a big budget the decomposition is exact: cells
            // strictly outside are not covered.
            if x0 > 0 && y0 > 0 {
                prop_assert!(!covered(z_encode(x0 - 1, y0 - 1)));
            }
            prop_assert!(!covered(z_encode(x1 + 1, y1 + 1)));
        }

        /// Tiny budgets still produce sound (superset) covers.
        #[test]
        fn coarse_budget_is_conservative(
            x0 in 0u16..5000,
            y0 in 0u16..5000,
            w in 0u16..2000,
            h in 0u16..2000,
        ) {
            let (x1, y1) = (x0 + w, y0 + h);
            let ranges = z_decompose(x0, x1, y0, y1, 4);
            // Soft budget: emitted-whole stack remainders can push past
            // the target, but never unboundedly (depth × 3 + budget).
            prop_assert!(ranges.len() <= 4 + 3 * 16, "budget blown: {}", ranges.len());
            let covered = |z: u32| ranges.iter().any(|&(lo, hi)| z >= lo && z <= hi);
            for &(x, y) in &[(x0, y0), (x1, y1), (x0, y1), (x1, y0)] {
                prop_assert!(covered(z_encode(x, y)));
            }
        }
    }
}
