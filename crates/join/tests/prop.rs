//! Property tests: every index-based join equals the brute-force oracle
//! on arbitrary datasets, windows, and node capacities.

use std::sync::Arc;

use cij_geom::{MovingRect, Rect};
use cij_join::{brute, improved_join, tc_join, techniques, tp_join, JoinPair};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprTree, TreeConfig};
use proptest::prelude::*;

fn arb_object(id_base: u64) -> impl Strategy<Value = (ObjectId, MovingRect)> {
    (
        0u64..10_000,
        0.0..990.0f64,
        0.0..990.0f64,
        0.1..10.0f64,
        -5.0..5.0f64,
        -5.0..5.0f64,
    )
        .prop_map(move |(id, x, y, side, vx, vy)| {
            (
                ObjectId(id_base + id),
                MovingRect::rigid(Rect::new([x, y], [x + side, y + side]), [vx, vy], 0.0),
            )
        })
}

fn dedup_ids(mut v: Vec<(ObjectId, MovingRect)>) -> Vec<(ObjectId, MovingRect)> {
    v.sort_by_key(|(o, _)| *o);
    v.dedup_by_key(|(o, _)| *o);
    v
}

fn build(objs: &[(ObjectId, MovingRect)], capacity: usize, pool: &BufferPool) -> TprTree {
    let mut tree = TprTree::new(
        pool.clone(),
        TreeConfig {
            capacity,
            ..TreeConfig::default()
        },
    );
    for &(oid, mbr) in objs {
        tree.insert(oid, mbr, 0.0).unwrap();
    }
    tree
}

fn sort_pairs(mut v: Vec<JoinPair>) -> Vec<JoinPair> {
    v.sort_by(|a, b| a.key().partial_cmp(&b.key()).unwrap());
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// TC-Join and every ImprovedJoin technique combo equal the oracle
    /// for arbitrary windows and tree shapes.
    #[test]
    fn joins_equal_oracle(
        a in proptest::collection::vec(arb_object(0), 0..120),
        b in proptest::collection::vec(arb_object(1 << 32), 0..120),
        capacity in prop_oneof![Just(4usize), Just(10), Just(30)],
        t_s in 0.0..30.0f64,
        len in 0.1..90.0f64,
    ) {
        let a = dedup_ids(a);
        let b = dedup_ids(b);
        let t_e = t_s + len;
        let pool =
            BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::with_capacity(256));
        let ta = build(&a, capacity, &pool);
        let tb = build(&b, capacity, &pool);

        let expect = sort_pairs(brute::brute_join(&a, &b, t_s, t_e));
        let (got, _) = tc_join(&ta, &tb, t_s, t_e).unwrap();
        let got = sort_pairs(got);
        prop_assert_eq!(got.len(), expect.len(), "tc_join count");
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!((g.a, g.b), (e.a, e.b));
            prop_assert!((g.interval.start - e.interval.start).abs() < 1e-7);
            prop_assert!((g.interval.end - e.interval.end).abs() < 1e-7);
        }

        for tech in [techniques::NONE, techniques::IC, techniques::PS, techniques::ALL] {
            let (got, _) = improved_join(&ta, &tb, t_s, t_e, tech).unwrap();
            let got = sort_pairs(got);
            prop_assert_eq!(got.len(), expect.len(), "improved {:?} count", tech);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert_eq!((g.a, g.b), (e.a, e.b), "{:?}", tech);
            }
        }

        // PBSM over the raw arrays must agree too (arbitrary grid).
        let cells = 1 + (t_s as usize % 7);
        let (got, _) = cij_join::partition_join(&a, &b, t_s, t_e, cells);
        let got = sort_pairs(got);
        prop_assert_eq!(got.len(), expect.len(), "pbsm count (cells {})", cells);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!((g.a, g.b), (e.a, e.b), "pbsm pair");
        }
    }

    /// Counter conservation across thread counts: for any technique set
    /// and any tree shape, the parallel traversal must report exactly
    /// the sequential counters — in particular the work-accounting sum
    /// `entry_comparisons + ic_pruned` (every entry either got compared
    /// or was pruned by the intersection check; splitting the traversal
    /// across workers must neither lose nor double-count either side) —
    /// and the same `pairs_emitted` / `node_pairs`.
    #[test]
    fn parallel_counters_conserved(
        a in proptest::collection::vec(arb_object(0), 0..120),
        b in proptest::collection::vec(arb_object(1 << 32), 0..120),
        capacity in prop_oneof![Just(4usize), Just(10), Just(30)],
        t_s in 0.0..30.0f64,
        len in 0.1..90.0f64,
        threads in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let a = dedup_ids(a);
        let b = dedup_ids(b);
        let t_e = t_s + len;
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::sharded(256, 8),
        );
        let ta = build(&a, capacity, &pool);
        let tb = build(&b, capacity, &pool);

        for tech in [
            techniques::NONE,
            techniques::IC,
            techniques::PS,
            techniques::DS_PS,
            techniques::IC_PS,
            techniques::ALL,
        ] {
            let (seq, seq_c) = improved_join(&ta, &tb, t_s, t_e, tech).unwrap();
            let (par, par_c) =
                cij_join::parallel_improved_join(&ta, &tb, t_s, t_e, tech, threads).unwrap();
            prop_assert_eq!(&seq, &par, "pairs differ: {:?} threads={}", tech, threads);
            prop_assert_eq!(seq_c, par_c, "counters differ: {:?} threads={}", tech, threads);
            prop_assert_eq!(
                seq_c.entry_comparisons + seq_c.ic_pruned,
                par_c.entry_comparisons + par_c.ic_pruned,
                "comparison+pruned conservation: {:?} threads={}", tech, threads
            );
            prop_assert_eq!(seq_c.pairs_emitted, par_c.pairs_emitted);
            prop_assert_eq!(seq_c.pairs_emitted, seq.len() as u64);
        }
    }

    /// TP-Join's current result and expiry equal brute force for
    /// arbitrary datasets.
    #[test]
    fn tp_join_equals_oracle(
        a in proptest::collection::vec(arb_object(0), 0..60),
        b in proptest::collection::vec(arb_object(1 << 32), 0..60),
        t_c in 0.0..20.0f64,
    ) {
        let a = dedup_ids(a);
        let b = dedup_ids(b);
        let pool =
            BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::with_capacity(256));
        let ta = build(&a, 10, &pool);
        let tb = build(&b, 10, &pool);
        let ans = tp_join(&ta, &tb, t_c).unwrap();

        let mut got = ans.current.clone();
        got.sort_unstable();
        prop_assert_eq!(got, brute::brute_pairs_at(&a, &b, t_c));

        let mut best = cij_geom::INFINITE_TIME;
        for (_, ma) in &a {
            for (_, mb) in &b {
                best = best.min(ma.influence_time(mb, t_c));
            }
        }
        if best.is_finite() {
            prop_assert!((ans.expiry - best).abs() < 1e-6,
                "expiry {} vs oracle {}", ans.expiry, best);
        } else {
            prop_assert_eq!(ans.expiry, cij_geom::INFINITE_TIME);
        }
    }
}
