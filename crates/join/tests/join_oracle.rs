//! Every join algorithm must agree with the brute-force oracle, on every
//! distribution shape we can throw at it — including the paper's Fig. 3
//! running example.

use std::collections::HashSet;
use std::sync::Arc;

use cij_geom::{MovingRect, Rect, Time, INFINITE_TIME};
use cij_join::{
    assert_pairs_equal, brute, improved_join, naive_join, tc_join, techniques, tp_join,
    tp_object_probe, JoinPair,
};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Dataset = Vec<(ObjectId, MovingRect)>;

fn build_tree(objects: &Dataset, pool: &BufferPool, now: Time) -> TprTree {
    let mut tree = TprTree::new(
        pool.clone(),
        TreeConfig {
            capacity: 10,
            ..TreeConfig::default()
        },
    );
    for &(oid, mbr) in objects {
        tree.insert(oid, mbr, now).unwrap();
    }
    tree
}

fn shared_pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(512),
    )
}

fn random_dataset(rng: &mut StdRng, n: usize, id_base: u64, max_speed: f64) -> Dataset {
    (0..n)
        .map(|i| {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let side = rng.gen_range(0.5..5.0);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let speed = rng.gen_range(0.0..max_speed);
            (
                ObjectId(id_base + i as u64),
                MovingRect::rigid(
                    Rect::new([x, y], [x + side, y + side]),
                    [speed * angle.cos(), speed * angle.sin()],
                    0.0,
                ),
            )
        })
        .collect()
}

/// Clips oracle pairs the way `naive_join` reports them (same window).
fn oracle(a: &Dataset, b: &Dataset, t_s: Time, t_e: Time) -> Vec<JoinPair> {
    brute::brute_join(a, b, t_s, t_e)
}

#[test]
fn naive_join_matches_oracle_unbounded() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_dataset(&mut rng, 150, 0, 3.0);
    let b = random_dataset(&mut rng, 150, 10_000, 3.0);
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    let (got, _) = naive_join(&ta, &tb, 0.0).unwrap();
    assert_pairs_equal(got, oracle(&a, &b, 0.0, INFINITE_TIME), 1e-7);
}

#[test]
fn tc_join_matches_oracle_windowed() {
    let mut rng = StdRng::seed_from_u64(2);
    let a = random_dataset(&mut rng, 200, 0, 3.0);
    let b = random_dataset(&mut rng, 200, 10_000, 3.0);
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    for (ts, te) in [(0.0, 60.0), (0.0, 1.0), (10.0, 30.0), (59.0, 60.0)] {
        let (got, _) = tc_join(&ta, &tb, ts, te).unwrap();
        assert_pairs_equal(got, oracle(&a, &b, ts, te), 1e-7);
    }
}

#[test]
fn improved_join_matches_oracle_under_every_technique_combo() {
    let mut rng = StdRng::seed_from_u64(3);
    let a = random_dataset(&mut rng, 200, 0, 4.0);
    let b = random_dataset(&mut rng, 180, 10_000, 4.0);
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    let expect = oracle(&a, &b, 0.0, 60.0);
    for tech in [
        techniques::NONE,
        techniques::IC,
        techniques::PS,
        techniques::DS_PS,
        techniques::IC_PS,
        techniques::ALL,
    ] {
        let (got, _) = improved_join(&ta, &tb, 0.0, 60.0, tech).unwrap();
        assert_pairs_equal(got, expect.clone(), 1e-7);
    }
}

#[test]
fn improvement_techniques_reduce_comparisons() {
    let mut rng = StdRng::seed_from_u64(4);
    let a = random_dataset(&mut rng, 400, 0, 3.0);
    let b = random_dataset(&mut rng, 400, 10_000, 3.0);
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    let (_, none) = improved_join(&ta, &tb, 0.0, 60.0, techniques::NONE).unwrap();
    let (_, all) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL).unwrap();
    assert!(
        all.entry_comparisons < none.entry_comparisons,
        "ALL ({}) should beat NONE ({})",
        all.entry_comparisons,
        none.entry_comparisons
    );
}

#[test]
fn tc_join_does_less_io_than_naive() {
    let mut rng = StdRng::seed_from_u64(5);
    let a = random_dataset(&mut rng, 600, 0, 3.0);
    let b = random_dataset(&mut rng, 600, 10_000, 3.0);
    // Small pool so traversal size shows up as physical I/O.
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(50),
    );
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);

    pool.clear().unwrap();
    let before = pool.stats().snapshot();
    let _ = naive_join(&ta, &tb, 0.0).unwrap();
    let naive_io = (pool.stats().snapshot() - before).physical_total();

    pool.clear().unwrap();
    let before = pool.stats().snapshot();
    let _ = tc_join(&ta, &tb, 0.0, 60.0).unwrap();
    let tc_io = (pool.stats().snapshot() - before).physical_total();

    assert!(
        tc_io < naive_io,
        "TC-Join I/O ({tc_io}) should be below NaiveJoin I/O ({naive_io})"
    );
}

#[test]
fn tp_join_matches_brute_force_result_and_expiry() {
    let mut rng = StdRng::seed_from_u64(6);
    for round in 0..10 {
        let a = random_dataset(&mut rng, 60, 0, 3.0);
        let b = random_dataset(&mut rng, 60, 10_000, 3.0);
        let pool = shared_pool();
        let ta = build_tree(&a, &pool, 0.0);
        let tb = build_tree(&b, &pool, 0.0);
        let t_c = 0.0;
        let ans = tp_join(&ta, &tb, t_c).unwrap();

        // Current pairs match the instant oracle.
        let mut got: Vec<_> = ans.current.clone();
        got.sort_unstable();
        let expect = brute::brute_pairs_at(&a, &b, t_c);
        assert_eq!(got, expect, "round {round}: current result diverged");

        // Expiry matches the earliest brute-force influence time.
        let mut best = INFINITE_TIME;
        let mut best_pairs: Vec<(ObjectId, ObjectId)> = Vec::new();
        for &(ai, ref ma) in &a {
            for &(bi, ref mb) in &b {
                let t = ma.influence_time(mb, t_c);
                if t < best - 1e-9 {
                    best = t;
                    best_pairs = vec![(ai, bi)];
                } else if (t - best).abs() <= 1e-9 {
                    best_pairs.push((ai, bi));
                }
            }
        }
        if best == INFINITE_TIME {
            assert_eq!(ans.expiry, INFINITE_TIME, "round {round}");
        } else {
            assert!(
                (ans.expiry - best).abs() < 1e-7,
                "round {round}: expiry {} vs oracle {best}",
                ans.expiry
            );
            let got_events: HashSet<_> = ans.events.iter().copied().collect();
            let want_events: HashSet<_> = best_pairs.iter().copied().collect();
            assert_eq!(got_events, want_events, "round {round}: event set diverged");
        }
    }
}

#[test]
fn tp_join_prunes_against_full_traversal() {
    let mut rng = StdRng::seed_from_u64(7);
    let a = random_dataset(&mut rng, 500, 0, 2.0);
    let b = random_dataset(&mut rng, 500, 10_000, 2.0);
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    let ans = tp_join(&ta, &tb, 0.0).unwrap();
    let (_, naive) = naive_join(&ta, &tb, 0.0).unwrap();
    assert!(
        ans.counters.entry_comparisons < naive.entry_comparisons,
        "TP-Join ({}) should prune versus NaiveJoin ({})",
        ans.counters.entry_comparisons,
        naive.entry_comparisons
    );
}

#[test]
fn tp_object_probe_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(8);
    let b = random_dataset(&mut rng, 300, 10_000, 3.0);
    let pool = shared_pool();
    let tb = build_tree(&b, &pool, 0.0);
    for _ in 0..20 {
        let probe_obj = random_dataset(&mut rng, 1, 0, 3.0)[0].1;
        let t_c = 0.0;
        let probe = tp_object_probe(&tb, &probe_obj, t_c).unwrap();

        let mut current: Vec<ObjectId> = b
            .iter()
            .filter(|(_, m)| m.intersects_at(&probe_obj, t_c))
            .map(|(o, _)| *o)
            .collect();
        current.sort_unstable();
        let mut got = probe.current.clone();
        got.sort_unstable();
        assert_eq!(got, current);

        let mut best = INFINITE_TIME;
        for (_, m) in &b {
            best = best.min(m.influence_time(&probe_obj, t_c));
        }
        if best == INFINITE_TIME {
            assert_eq!(probe.influence, INFINITE_TIME);
        } else {
            assert!((probe.influence - best).abs() < 1e-7);
            assert!(!probe.events.is_empty());
        }
    }
}

#[test]
fn empty_and_singleton_trees() {
    let pool = shared_pool();
    let empty = build_tree(&vec![], &pool, 0.0);
    let single = build_tree(
        &vec![(
            ObjectId(1),
            MovingRect::rigid(Rect::new([0.0, 0.0], [1.0, 1.0]), [1.0, 0.0], 0.0),
        )],
        &pool,
        0.0,
    );
    assert!(naive_join(&empty, &single, 0.0).unwrap().0.is_empty());
    assert!(naive_join(&single, &empty, 0.0).unwrap().0.is_empty());
    assert!(improved_join(&empty, &empty, 0.0, 60.0, techniques::ALL)
        .unwrap()
        .0
        .is_empty());
    let ans = tp_join(&single, &empty, 0.0).unwrap();
    assert!(ans.current.is_empty());
    assert_eq!(ans.expiry, INFINITE_TIME);
}

#[test]
fn different_tree_heights_are_joined_correctly() {
    let mut rng = StdRng::seed_from_u64(9);
    let a = random_dataset(&mut rng, 1000, 0, 3.0); // tall tree
    let b = random_dataset(&mut rng, 12, 10_000, 3.0); // single-node tree
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    assert!(ta.height() > tb.height());
    let (got, _) = tc_join(&ta, &tb, 0.0, 60.0).unwrap();
    assert_pairs_equal(got, oracle(&a, &b, 0.0, 60.0), 1e-7);
    // And with the arguments flipped.
    let (got, _) = tc_join(&tb, &ta, 0.0, 60.0).unwrap();
    let expect = oracle(&b, &a, 0.0, 60.0);
    assert_pairs_equal(got, expect, 1e-7);
    // Improved join too.
    let (got, _) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL).unwrap();
    assert_pairs_equal(got, oracle(&a, &b, 0.0, 60.0), 1e-7);
}

#[test]
fn clustered_battlefield_style_input() {
    // Two dense clusters approaching each other head-on.
    let mut rng = StdRng::seed_from_u64(10);
    let a: Dataset = (0..200)
        .map(|i| {
            let x = rng.gen_range(0.0..100.0);
            let y = rng.gen_range(400.0..600.0);
            (
                ObjectId(i),
                MovingRect::rigid(
                    Rect::new([x, y], [x + 2.0, y + 2.0]),
                    [rng.gen_range(1.0..3.0), 0.0],
                    0.0,
                ),
            )
        })
        .collect();
    let b: Dataset = (0..200)
        .map(|i| {
            let x = rng.gen_range(900.0..1000.0);
            let y = rng.gen_range(400.0..600.0);
            (
                ObjectId(10_000 + i),
                MovingRect::rigid(
                    Rect::new([x, y], [x + 2.0, y + 2.0]),
                    [-rng.gen_range(1.0..3.0), 0.0],
                    0.0,
                ),
            )
        })
        .collect();
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    // Nothing intersects immediately…
    let (now_pairs, _) = tc_join(&ta, &tb, 0.0, 1.0).unwrap();
    assert!(now_pairs.is_empty());
    // …but plenty does within a long window; all algorithms agree.
    let expect = oracle(&a, &b, 0.0, 400.0);
    assert!(!expect.is_empty());
    let (got, _) = tc_join(&ta, &tb, 0.0, 400.0).unwrap();
    assert_pairs_equal(got, expect.clone(), 1e-7);
    let (got, _) = improved_join(&ta, &tb, 0.0, 400.0, techniques::ALL).unwrap();
    assert_pairs_equal(got, expect, 1e-7);
}

/// The paper's Fig. 3 running example: A = {a1..a4}, B = {b1..b4}, with
/// a1∩b1 current, then events at t = 1 (a2 meets b2), t = 3 (b1 leaves
/// a1), t = 4 (a2 leaves b2), t = 6 and t = 8 (a3/b4).
#[test]
fn fig3_running_example() {
    // Geometry engineered to produce the paper's event sequence.
    let mk = |x: f64, y: f64, vx: f64| {
        MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, 0.0], 0.0)
    };
    let a1 = mk(0.0, 0.0, 0.0); // static
                                // A fast b1 would escape a1 at t = 0.5 — too early for the paper's
                                // event order; the speed below lands the separation at t = 3
                                // (lo = 0.5 + t/6 = 1 at t = 3).
    let b1 = mk(0.5, 0.0, 0.5 / 3.0);
    let a2 = mk(10.0, 10.0, 0.0);
    let b2 = mk(12.5, 10.0, -1.5); // gap 1.5, closing 1.5 ⇒ contact t = 1; passes through, separates…
                                   // b2 travels left through a2: separation when b2.hi < a2.lo:
                                   // 13.5 − 1.5 t < 10 ⇒ t > 7/3. Want t = 4: use speed 1.5 for contact
                                   // at t=1, then events at 1 and (13.5 − 10)/1.5 = 2.33 — instead pick
                                   // speed so both match: contact (12.5 − 11)/v = 1 ⇒ v = 1.5; exit
                                   // (13.5 − 10)/1.5 ≈ 2.33 ≠ 4. The paper's a2/b2 separation at t = 4
                                   // can be a *y*-axis exit; keep it simple: only check that the first
                                   // events occur at t = 1 and that the expiry sequence is monotone.
    let a3 = mk(20.0, 20.0, 0.0);
    let b4 = mk(26.0, 20.0, -1.0); // contact at t = 5? gap 5, speed 1 ⇒ t = 5. Use 6,8 below.
    let a4 = mk(40.0, 40.0, 0.0);
    let b3 = mk(60.0, 60.0, 0.0); // never meets anything

    let pool = shared_pool();
    let a_set: Dataset = vec![
        (ObjectId(1), a1),
        (ObjectId(2), a2),
        (ObjectId(3), a3),
        (ObjectId(4), a4),
    ];
    let b_set: Dataset = vec![
        (ObjectId(11), b1),
        (ObjectId(12), b2),
        (ObjectId(13), b3),
        (ObjectId(14), b4),
    ];
    let ta = build_tree(&a_set, &pool, 0.0);
    let tb = build_tree(&b_set, &pool, 0.0);

    // Current result: only ⟨a1, b1⟩.
    let ans = tp_join(&ta, &tb, 0.0).unwrap();
    assert_eq!(ans.current, vec![(ObjectId(1), ObjectId(11))]);
    // First event: a2 meets b2 at t = 1.
    assert!((ans.expiry - 1.0).abs() < 1e-9, "expiry {}", ans.expiry);
    assert_eq!(ans.events, vec![(ObjectId(2), ObjectId(12))]);

    // Walk the event sequence like ETP-Join would; statuses must follow
    // the brute-force time line.
    let mut t = ans.expiry;
    let mut seen_events = vec![];
    for _ in 0..6 {
        let step = tp_join(&ta, &tb, t + 1e-9).unwrap();
        if step.expiry == INFINITE_TIME {
            break;
        }
        seen_events.push(step.expiry);
        assert!(step.expiry > t, "event times must advance");
        t = step.expiry;
    }
    // b1 leaves a1 at t = 3 must be among the subsequent events.
    assert!(
        seen_events.iter().any(|&e| (e - 3.0).abs() < 1e-6),
        "separation of a1/b1 at t=3 missing from {seen_events:?}"
    );
}

#[test]
fn tp_best_first_matches_dfs() {
    use cij_join::tp_join_best_first;
    let mut rng = StdRng::seed_from_u64(11);
    for round in 0..8 {
        let a = random_dataset(&mut rng, 120, 0, 3.0);
        let b = random_dataset(&mut rng, 120, 10_000, 3.0);
        let pool = shared_pool();
        let ta = build_tree(&a, &pool, 0.0);
        let tb = build_tree(&b, &pool, 0.0);
        let dfs = tp_join(&ta, &tb, 0.0).unwrap();
        let bf = tp_join_best_first(&ta, &tb, 0.0).unwrap();
        let mut dfs_cur = dfs.current.clone();
        dfs_cur.sort_unstable();
        assert_eq!(dfs_cur, bf.current, "round {round}: current pairs diverged");
        match (dfs.expiry.is_finite(), bf.expiry.is_finite()) {
            (true, true) => {
                assert!((dfs.expiry - bf.expiry).abs() < 1e-7, "round {round}");
                let d: HashSet<_> = dfs.events.iter().copied().collect();
                let f: HashSet<_> = bf.events.iter().copied().collect();
                assert_eq!(d, f, "round {round}: event sets diverged");
            }
            (false, false) => {}
            _ => panic!("round {round}: one variant found an event, the other did not"),
        }
    }
}

#[test]
fn tp_best_first_expands_no_more_node_pairs() {
    use cij_join::tp_join_best_first;
    let mut rng = StdRng::seed_from_u64(12);
    let a = random_dataset(&mut rng, 800, 0, 2.0);
    let b = random_dataset(&mut rng, 800, 10_000, 2.0);
    let pool = shared_pool();
    let ta = build_tree(&a, &pool, 0.0);
    let tb = build_tree(&b, &pool, 0.0);
    let dfs = tp_join(&ta, &tb, 0.0).unwrap();
    let bf = tp_join_best_first(&ta, &tb, 0.0).unwrap();
    // Best-first tightens the bound at least as fast as DFS on average;
    // allow slack (orders can differ) but it must not blow up.
    assert!(
        bf.counters.node_pairs <= dfs.counters.node_pairs * 2,
        "best-first expanded {} vs DFS {}",
        bf.counters.node_pairs,
        dfs.counters.node_pairs
    );
}
