//! Allocation regression test for the join hot path.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up call, a steady-state [`improved_join_into`] over trees with a
//! decoded-node cache must perform **zero** heap allocations: node reads
//! are `Arc` clones out of the cache, traversal temporaries come from the
//! reused [`JoinScratch`] frames, and the output vector retains its
//! capacity. This pins the PR's two structural claims — no
//! per-visit `Vec::new()` (the old `improved.rs` spill temporary) and no
//! per-node `SweepItem` array builds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cij_geom::{MovingRect, Rect};
use cij_join::{
    improved_join, improved_join_into, ps_intersection, techniques, JoinCounters, JoinScratch,
    SweepItem,
};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprTree, TreeConfig};

/// Counts every allocation (alloc / realloc / alloc_zeroed). Deallocs
/// are not counted — freeing retained buffers is not a regression.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Two trees with node caches large enough to hold every page, so a
/// warmed traversal never decodes.
fn build_cached_trees(n: u64) -> (TprTree, TprTree) {
    let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
    let config = TreeConfig::default().with_node_cache(1024);
    let mut ta = TprTree::new(pool.clone(), config);
    let mut tb = TprTree::new(pool, config);
    for i in 0..n {
        let x = (i as f64 * 13.0) % 700.0;
        let y = (i as f64 * 29.0) % 700.0;
        ta.insert(
            ObjectId(i),
            MovingRect::rigid(Rect::new([x, y], [x + 2.0, y + 2.0]), [1.0, -0.5], 0.0),
            0.0,
        )
        .expect("insert a");
        tb.insert(
            ObjectId(100_000 + i),
            MovingRect::rigid(
                Rect::new([x + 4.0, y + 1.0], [x + 6.0, y + 3.0]),
                [-1.0, 0.5],
                0.0,
            ),
            0.0,
        )
        .expect("insert b");
    }
    (ta, tb)
}

#[test]
fn warm_improved_join_performs_zero_allocations() {
    let (ta, tb) = build_cached_trees(500);
    let mut scratch = JoinScratch::new();
    let mut out = Vec::new();

    // Warm-up: populates the node caches, grows the scratch frames and
    // the output vector to their steady-state sizes.
    let warm = improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)
        .expect("warm-up join");
    assert!(!out.is_empty(), "workload must produce pairs");
    let warm_pairs = out.clone();

    for round in 0..3 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let counters =
            improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)
                .expect("steady-state join");
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady-state improved_join_into allocated (round {round})"
        );
        assert_eq!(counters, warm, "counters changed between identical runs");
        assert_eq!(out, warm_pairs, "pairs changed between identical runs");
    }
}

#[test]
fn every_technique_combination_is_allocation_free_when_warm() {
    let (ta, tb) = build_cached_trees(300);
    for tech in [
        techniques::NONE,
        techniques::IC,
        techniques::PS,
        techniques::DS_PS,
        techniques::IC_PS,
        techniques::ALL,
    ] {
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        improved_join_into(&ta, &tb, 0.0, 60.0, tech, &mut scratch, &mut out).expect("warm-up");
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        improved_join_into(&ta, &tb, 0.0, 60.0, tech, &mut scratch, &mut out).expect("steady");
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(after - before, 0, "technique set {tech:?} allocated");
    }
}

/// Pins the `sort_unstable_by` in [`ps_intersection`]: sorting the sweep
/// inputs must not allocate (the old stable `sort_by` grabbed an `n/2`
/// merge-scratch buffer for slices above the insertion-sort threshold).
/// The inputs are far apart, so the sweep emits nothing and the
/// zero-capacity output `Vec` never allocates either.
#[test]
fn aos_sweep_sort_does_not_allocate() {
    // 96 items, well above any insertion-sort cutoff, in scrambled lb
    // order so the sort does real work.
    let make_side = |offset: f64| -> Vec<SweepItem> {
        (0..96u64)
            .map(|i| {
                let x = offset + ((i * 61) % 96) as f64 * 10_000.0;
                let m = MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [0.0, 0.0], 0.0);
                SweepItem::new(m, i as usize, 0, 0.0, 60.0)
            })
            .collect()
    };
    let mut sa = make_side(0.0);
    let mut sb = make_side(2_000_000.0);
    let mut counters = JoinCounters::new();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let pairs = ps_intersection(&mut sa, &mut sb, 0.0, 60.0, &mut counters);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(pairs.is_empty(), "workload must stay pair-free");
    assert_eq!(after - before, 0, "ps_intersection sort allocated");
    // The sides interleave in lb order, so the sweep really ran.
    assert!(sa.windows(2).all(|w| w[0].lb <= w[1].lb), "sa not sorted");
    assert!(sb.windows(2).all(|w| w[0].lb <= w[1].lb), "sb not sorted");
}

#[test]
fn scratch_entry_point_matches_plain_entry_point() {
    let (ta, tb) = build_cached_trees(400);
    let (pairs, counters) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL).expect("plain");
    let mut scratch = JoinScratch::new();
    let mut out = Vec::new();
    let counters_into =
        improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)
            .expect("into");
    assert_eq!(pairs, out);
    assert_eq!(counters, counters_into);
}
