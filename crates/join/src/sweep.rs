//! Plane sweep over *moving* rectangles (paper §IV-D1, `PSIntersection`).
//!
//! Classic plane sweep orders static rectangles by their lower bound in
//! one dimension and scans each against the run of rectangles whose lower
//! bound does not exceed its upper bound. For moving rectangles over a
//! *constrained* window `[t⊢, t⊣]`, the paper's insight is that
//!
//! * `lb = min(O.Rx−(t⊢), O.Rx−(t⊣))` and
//! * `ub = max(O.Rx+(t⊢), O.Rx+(t⊣))`
//!
//! are valid sweep bounds: a bound linear in time attains its extremes at
//! the window's endpoints, so `O₁.ub < O₂.lb` proves the two never meet
//! in that dimension within the window. An unbounded window has no such
//! `ub` — which is precisely why plane sweep *requires* time-constrained
//! processing.

use cij_geom::{MovingRect, Time, TimeInterval};

use crate::counters::JoinCounters;

/// A sweep participant: the moving rectangle plus its precomputed sweep
/// bounds and the caller's index for identifying it in the output.
#[derive(Debug, Clone, Copy)]
pub struct SweepItem {
    /// The moving rectangle being swept.
    pub mbr: MovingRect,
    /// Sweep lower bound in the sort dimension over the window.
    pub lb: f64,
    /// Sweep upper bound in the sort dimension over the window.
    pub ub: f64,
    /// Caller-side index (position in the node's entry list).
    pub idx: usize,
}

impl SweepItem {
    /// Builds an item for the window `[t_s, t_e]`, sweeping dimension
    /// `dim`.
    #[must_use]
    pub fn new(mbr: MovingRect, idx: usize, dim: usize, t_s: Time, t_e: Time) -> Self {
        let lb = mbr.lo_at(dim, t_s).min(mbr.lo_at(dim, t_e));
        let ub = mbr.hi_at(dim, t_s).max(mbr.hi_at(dim, t_e));
        Self { mbr, lb, ub, idx }
    }
}

/// The paper's `PSIntersection`: all pairs from `sa × sb` whose moving
/// rectangles intersect within `[t_s, t_e]`, found in plane-sweep order.
///
/// Sorts both sequences in place by `lb`, then advances the sweep over
/// the merged order; each emitted triple is `(idx_a, idx_b, interval)`.
/// `t_e` must be finite (see module docs).
///
/// ```
/// use cij_geom::{MovingRect, Rect};
/// use cij_join::{ps_intersection, JoinCounters, SweepItem};
///
/// let make = |x: f64, vx: f64, idx: usize| {
///     let m = MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [vx, 0.0], 0.0);
///     SweepItem::new(m, idx, 0, 0.0, 60.0)
/// };
/// let mut sa = vec![make(0.0, 1.0, 0), make(500.0, 0.0, 1)];
/// let mut sb = vec![make(10.0, 0.0, 0), make(900.0, 0.0, 1)];
/// let mut counters = JoinCounters::new();
/// let pairs = ps_intersection(&mut sa, &mut sb, 0.0, 60.0, &mut counters);
/// // Only (a0, b0) meet within the window (contact at t = 9); the sweep
/// // never even compared the far-apart pairs.
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].0, pairs[0].1), (0, 0));
/// assert!(counters.entry_comparisons < 4);
/// ```
pub fn ps_intersection(
    sa: &mut [SweepItem],
    sb: &mut [SweepItem],
    t_s: Time,
    t_e: Time,
    counters: &mut JoinCounters,
) -> Vec<(usize, usize, TimeInterval)> {
    debug_assert!(t_e.is_finite(), "plane sweep requires a bounded window");
    let by_lb = |x: &SweepItem, y: &SweepItem| x.lb.partial_cmp(&y.lb).expect("finite bounds");
    sa.sort_by(by_lb);
    sb.sort_by(by_lb);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        if sa[i].lb <= sb[j].lb {
            let c = sa[i];
            let mut k = j;
            while k < sb.len() && sb[k].lb <= c.ub {
                counters.entry_comparisons += 1;
                if let Some(iv) = c.mbr.intersect_interval(&sb[k].mbr, t_s, t_e) {
                    out.push((c.idx, sb[k].idx, iv));
                }
                k += 1;
            }
            i += 1;
        } else {
            let c = sb[j];
            let mut k = i;
            while k < sa.len() && sa[k].lb <= c.ub {
                counters.entry_comparisons += 1;
                if let Some(iv) = c.mbr.intersect_interval(&sa[k].mbr, t_s, t_e) {
                    out.push((sa[k].idx, c.idx, iv));
                }
                k += 1;
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;

    fn item(idx: usize, x: f64, vx: f64, dim: usize, t0: f64, t1: f64) -> SweepItem {
        let mbr = MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [vx, 0.0], 0.0);
        SweepItem::new(mbr, idx, dim, t0, t1)
    }

    #[test]
    fn sweep_bounds_cover_motion() {
        // Moving right at speed 2 over [0, 10]: lb = x(0).lo, ub = x(10).hi.
        let it = item(0, 5.0, 2.0, 0, 0.0, 10.0);
        assert_eq!(it.lb, 5.0);
        assert_eq!(it.ub, 5.0 + 1.0 + 20.0);
        // Moving left: lb comes from the window end.
        let it = item(0, 5.0, -2.0, 0, 0.0, 10.0);
        assert_eq!(it.lb, 5.0 - 20.0);
        assert_eq!(it.ub, 6.0);
    }

    #[test]
    fn matches_nested_loop_on_random_input() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..50 {
            let (t0, t1) = (0.0, 20.0);
            let n = 1 + round % 17;
            let make = |rng: &mut StdRng, idx: usize| {
                let x = rng.gen_range(-50.0..50.0);
                let y = rng.gen_range(-50.0..50.0);
                let s = rng.gen_range(0.1..5.0);
                let mbr = MovingRect::rigid(
                    Rect::new([x, y], [x + s, y + s]),
                    [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)],
                    0.0,
                );
                SweepItem::new(mbr, idx, 0, t0, t1)
            };
            let mut sa: Vec<_> = (0..n).map(|i| make(&mut rng, i)).collect();
            let mut sb: Vec<_> = (0..n + 3).map(|i| make(&mut rng, i)).collect();

            let mut expect = Vec::new();
            for a in &sa {
                for b in &sb {
                    if let Some(iv) = a.mbr.intersect_interval(&b.mbr, t0, t1) {
                        expect.push((a.idx, b.idx, iv));
                    }
                }
            }
            let mut counters = JoinCounters::new();
            let mut got = ps_intersection(&mut sa, &mut sb, t0, t1, &mut counters);
            got.sort_by_key(|&(a, b, _)| (a, b));
            expect.sort_by_key(|&(a, b, _)| (a, b));
            assert_eq!(got.len(), expect.len(), "round {round}");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!((g.0, g.1), (e.0, e.1));
                assert!((g.2.start - e.2.start).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sweep_prunes_comparisons_on_sparse_input() {
        // Widely separated static items: nested loop would do n·m = 100
        // comparisons, the sweep a handful.
        let (t0, t1) = (0.0, 1.0);
        let mut sa: Vec<_> = (0..10)
            .map(|i| item(i, i as f64 * 100.0, 0.0, 0, t0, t1))
            .collect();
        let mut sb: Vec<_> = (0..10)
            .map(|i| item(i, i as f64 * 100.0 + 50.0, 0.0, 0, t0, t1))
            .collect();
        let mut counters = JoinCounters::new();
        let got = ps_intersection(&mut sa, &mut sb, t0, t1, &mut counters);
        assert!(got.is_empty());
        assert!(
            counters.entry_comparisons < 100,
            "sweep did {} comparisons",
            counters.entry_comparisons
        );
    }

    #[test]
    fn empty_inputs() {
        let mut counters = JoinCounters::new();
        let mut sa = vec![item(0, 0.0, 0.0, 0, 0.0, 1.0)];
        assert!(ps_intersection(&mut sa, &mut [], 0.0, 1.0, &mut counters).is_empty());
        assert!(ps_intersection(&mut [], &mut sa, 0.0, 1.0, &mut counters).is_empty());
    }

    #[test]
    fn identical_bounds_do_not_miss() {
        // Items with equal lb must still be paired.
        let (t0, t1) = (0.0, 5.0);
        let mut sa = vec![item(0, 1.0, 0.0, 0, t0, t1), item(1, 1.0, 0.0, 0, t0, t1)];
        let mut sb = vec![item(0, 1.0, 0.0, 0, t0, t1)];
        let mut counters = JoinCounters::new();
        let got = ps_intersection(&mut sa, &mut sb, t0, t1, &mut counters);
        assert_eq!(got.len(), 2);
    }
}
