//! Plane sweep over *moving* rectangles (paper §IV-D1, `PSIntersection`).
//!
//! Classic plane sweep orders static rectangles by their lower bound in
//! one dimension and scans each against the run of rectangles whose lower
//! bound does not exceed its upper bound. For moving rectangles over a
//! *constrained* window `[t⊢, t⊣]`, the paper's insight is that
//!
//! * `lb = min(O.Rx−(t⊢), O.Rx−(t⊣))` and
//! * `ub = max(O.Rx+(t⊢), O.Rx+(t⊣))`
//!
//! are valid sweep bounds: a bound linear in time attains its extremes at
//! the window's endpoints, so `O₁.ub < O₂.lb` proves the two never meet
//! in that dimension within the window. An unbounded window has no such
//! `ub` — which is precisely why plane sweep *requires* time-constrained
//! processing.

use cij_geom::{MovingRect, Time, TimeInterval};
use cij_tpr::EntryLanes;

use crate::counters::JoinCounters;
#[cfg(feature = "simd")]
use crate::kernel;

/// A sweep participant: the moving rectangle plus its precomputed sweep
/// bounds and the caller's index for identifying it in the output.
#[derive(Debug, Clone, Copy)]
pub struct SweepItem {
    /// The moving rectangle being swept.
    pub mbr: MovingRect,
    /// Sweep lower bound in the sort dimension over the window.
    pub lb: f64,
    /// Sweep upper bound in the sort dimension over the window.
    pub ub: f64,
    /// Caller-side index (position in the node's entry list).
    pub idx: usize,
}

impl SweepItem {
    /// Builds an item for the window `[t_s, t_e]`, sweeping dimension
    /// `dim`.
    #[must_use]
    pub fn new(mbr: MovingRect, idx: usize, dim: usize, t_s: Time, t_e: Time) -> Self {
        let lb = mbr.lo_at(dim, t_s).min(mbr.lo_at(dim, t_e));
        let ub = mbr.hi_at(dim, t_s).max(mbr.hi_at(dim, t_e));
        Self { mbr, lb, ub, idx }
    }
}

/// The paper's `PSIntersection`: all pairs from `sa × sb` whose moving
/// rectangles intersect within `[t_s, t_e]`, found in plane-sweep order.
///
/// Sorts both sequences in place by `lb`, then advances the sweep over
/// the merged order; each emitted triple is `(idx_a, idx_b, interval)`.
/// `t_e` must be finite (see module docs).
///
/// ```
/// use cij_geom::{MovingRect, Rect};
/// use cij_join::{ps_intersection, JoinCounters, SweepItem};
///
/// let make = |x: f64, vx: f64, idx: usize| {
///     let m = MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [vx, 0.0], 0.0);
///     SweepItem::new(m, idx, 0, 0.0, 60.0)
/// };
/// let mut sa = vec![make(0.0, 1.0, 0), make(500.0, 0.0, 1)];
/// let mut sb = vec![make(10.0, 0.0, 0), make(900.0, 0.0, 1)];
/// let mut counters = JoinCounters::new();
/// let pairs = ps_intersection(&mut sa, &mut sb, 0.0, 60.0, &mut counters);
/// // Only (a0, b0) meet within the window (contact at t = 9); the sweep
/// // never even compared the far-apart pairs.
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].0, pairs[0].1), (0, 0));
/// assert!(counters.entry_comparisons < 4);
/// ```
pub fn ps_intersection(
    sa: &mut [SweepItem],
    sb: &mut [SweepItem],
    t_s: Time,
    t_e: Time,
    counters: &mut JoinCounters,
) -> Vec<(usize, usize, TimeInterval)> {
    debug_assert!(t_e.is_finite(), "plane sweep requires a bounded window");
    // Unstable sort with an explicit `(lb, idx)` key: when callers assign
    // `idx` in push order (every call site in this codebase does, via
    // `enumerate` or ascending index lists), ties resolve to insertion
    // order — the same permutation a stable sort by `lb` alone produces —
    // without merge sort's `n/2` scratch allocation. Pinned by the
    // `aos_sweep_sort_does_not_allocate` regression test.
    let by_lb = |x: &SweepItem, y: &SweepItem| {
        x.lb.partial_cmp(&y.lb)
            .expect("finite bounds")
            .then(x.idx.cmp(&y.idx))
    };
    sa.sort_unstable_by(by_lb);
    sb.sort_unstable_by(by_lb);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        if sa[i].lb <= sb[j].lb {
            let c = sa[i];
            let mut k = j;
            while k < sb.len() && sb[k].lb <= c.ub {
                counters.entry_comparisons += 1;
                if let Some(iv) = c.mbr.intersect_interval(&sb[k].mbr, t_s, t_e) {
                    out.push((c.idx, sb[k].idx, iv));
                }
                k += 1;
            }
            i += 1;
        } else {
            let c = sb[j];
            let mut k = i;
            while k < sa.len() && sa[k].lb <= c.ub {
                counters.entry_comparisons += 1;
                if let Some(iv) = c.mbr.intersect_interval(&sa[k].mbr, t_s, t_e) {
                    out.push((sa[k].idx, c.idx, iv));
                }
                k += 1;
            }
            j += 1;
        }
    }
    out
}

/// Structure-of-arrays sweep state with retained capacity.
///
/// The hot-loop twin of [`SweepItem`]: the sort keys (`lb`/`ub`), the
/// rectangles, and the caller indices live in parallel vectors that are
/// `clear()`ed and refilled, so steady-state sweeps allocate nothing.
/// The rectangles stay contiguous as structs — the refinement kernel
/// (`crate::kernel`, simd builds) walks each candidate run as one `&[MovingRect]`
/// stream (the `simd` flavour extracts its 4-wide chunks from that same
/// slice), which keeps every run element on adjacent cache lines instead
/// of scattering it across nine component arrays. Sorting is done
/// through a permutation array with reusable gather buffers.
///
/// Emission order of [`ps_intersection_soa`] is identical to
/// [`ps_intersection`] on the same input: the permutation sort breaks
/// `lb` ties by insertion position, matching the `(lb, idx)` key used
/// there.
#[derive(Debug, Default)]
pub struct SweepSoa {
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) mbrs: Vec<MovingRect>,
    pub(crate) idxs: Vec<u32>,
    perm: Vec<u32>,
    back_f64: Vec<f64>,
    back_mbrs: Vec<MovingRect>,
    back_idxs: Vec<u32>,
}

impl SweepSoa {
    /// An empty sweep buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lb.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lb.is_empty()
    }

    /// Drops all items, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.lb.clear();
        self.ub.clear();
        self.mbrs.clear();
        self.idxs.clear();
    }

    /// Appends one item, computing its sweep bounds for the window
    /// `[t_s, t_e]` in dimension `dim` (same formulas as
    /// [`SweepItem::new`]).
    pub fn push(&mut self, mbr: MovingRect, idx: u32, dim: usize, t_s: Time, t_e: Time) {
        self.lb.push(mbr.lo_at(dim, t_s).min(mbr.lo_at(dim, t_e)));
        self.ub.push(mbr.hi_at(dim, t_s).max(mbr.hi_at(dim, t_e)));
        self.mbrs.push(mbr);
        self.idxs.push(idx);
    }

    /// [`Self::push`] reading entry `i` of a zero-copy lane set directly —
    /// no intermediate [`MovingRect`]. Bounds use the same
    /// `lo + vlo·(t − t_ref)` expressions as [`MovingRect::lo_at`] /
    /// [`MovingRect::hi_at`], so the buffered values are bit-identical to
    /// the `push` path.
    pub fn push_from_lanes(
        &mut self,
        lanes: &EntryLanes,
        i: usize,
        idx: u32,
        dim: usize,
        t_s: Time,
        t_e: Time,
    ) {
        let (lo, vlo) = (lanes.lo[dim][i], lanes.vlo[dim][i]);
        let (hi, vhi) = (lanes.hi[dim][i], lanes.vhi[dim][i]);
        let tr = lanes.t_ref[i];
        self.lb
            .push((lo + vlo * (t_s - tr)).min(lo + vlo * (t_e - tr)));
        self.ub
            .push((hi + vhi * (t_s - tr)).max(hi + vhi * (t_e - tr)));
        self.mbrs.push(lanes.mbr(i));
        self.idxs.push(idx);
    }

    /// Bulk refill from a whole lane set (indices `0..lanes.len()` in
    /// order): the sweep bounds are one tight loop per side over the
    /// component lanes, the rectangles one assembly pass. Equivalent to
    /// `clear` + `push_from_lanes` for every entry.
    pub fn fill_all_from_lanes(&mut self, lanes: &EntryLanes, dim: usize, t_s: Time, t_e: Time) {
        self.clear();
        let n = lanes.len();
        let (lo, vlo) = (&lanes.lo[dim], &lanes.vlo[dim]);
        let (hi, vhi) = (&lanes.hi[dim], &lanes.vhi[dim]);
        let tr = &lanes.t_ref;
        self.lb.extend(
            (0..n).map(|i| (lo[i] + vlo[i] * (t_s - tr[i])).min(lo[i] + vlo[i] * (t_e - tr[i]))),
        );
        self.ub.extend(
            (0..n).map(|i| (hi[i] + vhi[i] * (t_s - tr[i])).max(hi[i] + vhi[i] * (t_e - tr[i]))),
        );
        self.mbrs.extend((0..n).map(|i| lanes.mbr(i)));
        self.idxs.extend(0..n as u32);
    }

    /// Rectangle of item `i`.
    #[cfg(feature = "simd")]
    #[inline]
    #[must_use]
    pub(crate) fn mbr(&self, i: usize) -> &MovingRect {
        &self.mbrs[i]
    }

    /// Caller index of item `i`.
    #[cfg(feature = "simd")]
    #[inline]
    #[must_use]
    pub(crate) fn idx(&self, i: usize) -> u32 {
        self.idxs[i]
    }

    /// Sorts every array by `lb` (ties: insertion order, matching a
    /// stable sort) via a permutation + gather; no allocation once the
    /// buffers have grown to size. The `back_f64` scratch buffer serves
    /// both key lanes in turn — each gather swaps it with the lane it
    /// just permuted.
    fn sort_by_lb(&mut self) {
        let n = self.len();
        self.perm.clear();
        self.perm.extend(0..n as u32);
        let lb = &self.lb;
        self.perm.sort_unstable_by(|&a, &b| {
            lb[a as usize]
                .partial_cmp(&lb[b as usize])
                .expect("finite bounds")
                .then(a.cmp(&b))
        });
        gather_f64(&self.perm, &mut self.lb, &mut self.back_f64);
        gather_f64(&self.perm, &mut self.ub, &mut self.back_f64);
        self.back_mbrs.clear();
        self.back_mbrs
            .extend(self.perm.iter().map(|&p| self.mbrs[p as usize]));
        std::mem::swap(&mut self.mbrs, &mut self.back_mbrs);
        self.back_idxs.clear();
        self.back_idxs
            .extend(self.perm.iter().map(|&p| self.idxs[p as usize]));
        std::mem::swap(&mut self.idxs, &mut self.back_idxs);
    }
}

/// Permutes `lane` by `perm` through the reusable `back` buffer (which
/// takes over the lane's old allocation on the way out).
fn gather_f64(perm: &[u32], lane: &mut Vec<f64>, back: &mut Vec<f64>) {
    back.clear();
    back.extend(perm.iter().map(|&p| lane[p as usize]));
    std::mem::swap(lane, back);
}

/// [`ps_intersection`] over [`SweepSoa`] buffers, appending into a
/// caller-owned (capacity-retained) output vector instead of returning a
/// fresh one. Identical pairs in identical order; zero allocation in
/// steady state.
///
/// By default each sweep step refines candidates in one fused scan (the
/// reference semantics, fully inline). Under the `simd` cargo feature
/// the step first measures the contiguous candidate run (`lb` is sorted,
/// so `lb[k] <= c_ub` holds on exactly a prefix — the run length equals
/// the per-iteration comparison count of the fused formulation, keeping
/// `entry_comparisons` bit-identical) and hands the run to the chunked
/// 4-lane kernel in `crate::kernel` (simd builds).
pub fn ps_intersection_soa(
    sa: &mut SweepSoa,
    sb: &mut SweepSoa,
    t_s: Time,
    t_e: Time,
    counters: &mut JoinCounters,
    out: &mut Vec<(u32, u32, TimeInterval)>,
) {
    debug_assert!(t_e.is_finite(), "plane sweep requires a bounded window");
    out.clear();
    sa.sort_by_lb();
    sb.sort_by_lb();
    let (mut i, mut j) = (0usize, 0usize);
    #[cfg(not(feature = "simd"))]
    while i < sa.lb.len() && j < sb.lb.len() {
        if sa.lb[i] <= sb.lb[j] {
            let (c_ub, c_idx) = (sa.ub[i], sa.idxs[i]);
            let c_mbr = &sa.mbrs[i];
            let mut k = j;
            while k < sb.lb.len() && sb.lb[k] <= c_ub {
                counters.entry_comparisons += 1;
                if let Some(iv) = c_mbr.intersect_interval(&sb.mbrs[k], t_s, t_e) {
                    out.push((c_idx, sb.idxs[k], iv));
                }
                k += 1;
            }
            i += 1;
        } else {
            let (c_ub, c_idx) = (sb.ub[j], sb.idxs[j]);
            let c_mbr = &sb.mbrs[j];
            let mut k = i;
            while k < sa.lb.len() && sa.lb[k] <= c_ub {
                counters.entry_comparisons += 1;
                if let Some(iv) = sa.mbrs[k].intersect_interval(c_mbr, t_s, t_e) {
                    out.push((sa.idxs[k], c_idx, iv));
                }
                k += 1;
            }
            j += 1;
        }
    }
    #[cfg(feature = "simd")]
    while i < sa.lb.len() && j < sb.lb.len() {
        if sa.lb[i] <= sb.lb[j] {
            let c_ub = sa.ub[i];
            let mut end = j;
            while end < sb.lb.len() && sb.lb[end] <= c_ub {
                end += 1;
            }
            counters.entry_comparisons += (end - j) as u64;
            kernel::refine_run(sa.mbr(i), sa.idxs[i], sb, j, end, t_s, t_e, false, out);
            i += 1;
        } else {
            let c_ub = sb.ub[j];
            let mut end = i;
            while end < sa.lb.len() && sa.lb[end] <= c_ub {
                end += 1;
            }
            counters.entry_comparisons += (end - i) as u64;
            kernel::refine_run(sb.mbr(j), sb.idxs[j], sa, i, end, t_s, t_e, true, out);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;

    fn item(idx: usize, x: f64, vx: f64, dim: usize, t0: f64, t1: f64) -> SweepItem {
        let mbr = MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [vx, 0.0], 0.0);
        SweepItem::new(mbr, idx, dim, t0, t1)
    }

    #[test]
    fn sweep_bounds_cover_motion() {
        // Moving right at speed 2 over [0, 10]: lb = x(0).lo, ub = x(10).hi.
        let it = item(0, 5.0, 2.0, 0, 0.0, 10.0);
        assert_eq!(it.lb, 5.0);
        assert_eq!(it.ub, 5.0 + 1.0 + 20.0);
        // Moving left: lb comes from the window end.
        let it = item(0, 5.0, -2.0, 0, 0.0, 10.0);
        assert_eq!(it.lb, 5.0 - 20.0);
        assert_eq!(it.ub, 6.0);
    }

    #[test]
    fn matches_nested_loop_on_random_input() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for round in 0..50 {
            let (t0, t1) = (0.0, 20.0);
            let n = 1 + round % 17;
            let make = |rng: &mut StdRng, idx: usize| {
                let x = rng.gen_range(-50.0..50.0);
                let y = rng.gen_range(-50.0..50.0);
                let s = rng.gen_range(0.1..5.0);
                let mbr = MovingRect::rigid(
                    Rect::new([x, y], [x + s, y + s]),
                    [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)],
                    0.0,
                );
                SweepItem::new(mbr, idx, 0, t0, t1)
            };
            let mut sa: Vec<_> = (0..n).map(|i| make(&mut rng, i)).collect();
            let mut sb: Vec<_> = (0..n + 3).map(|i| make(&mut rng, i)).collect();

            let mut expect = Vec::new();
            for a in &sa {
                for b in &sb {
                    if let Some(iv) = a.mbr.intersect_interval(&b.mbr, t0, t1) {
                        expect.push((a.idx, b.idx, iv));
                    }
                }
            }
            let mut counters = JoinCounters::new();
            let mut got = ps_intersection(&mut sa, &mut sb, t0, t1, &mut counters);
            got.sort_by_key(|&(a, b, _)| (a, b));
            expect.sort_by_key(|&(a, b, _)| (a, b));
            assert_eq!(got.len(), expect.len(), "round {round}");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!((g.0, g.1), (e.0, e.1));
                assert!((g.2.start - e.2.start).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sweep_prunes_comparisons_on_sparse_input() {
        // Widely separated static items: nested loop would do n·m = 100
        // comparisons, the sweep a handful.
        let (t0, t1) = (0.0, 1.0);
        let mut sa: Vec<_> = (0..10)
            .map(|i| item(i, i as f64 * 100.0, 0.0, 0, t0, t1))
            .collect();
        let mut sb: Vec<_> = (0..10)
            .map(|i| item(i, i as f64 * 100.0 + 50.0, 0.0, 0, t0, t1))
            .collect();
        let mut counters = JoinCounters::new();
        let got = ps_intersection(&mut sa, &mut sb, t0, t1, &mut counters);
        assert!(got.is_empty());
        assert!(
            counters.entry_comparisons < 100,
            "sweep did {} comparisons",
            counters.entry_comparisons
        );
    }

    #[test]
    fn empty_inputs() {
        let mut counters = JoinCounters::new();
        let mut sa = vec![item(0, 0.0, 0.0, 0, 0.0, 1.0)];
        assert!(ps_intersection(&mut sa, &mut [], 0.0, 1.0, &mut counters).is_empty());
        assert!(ps_intersection(&mut [], &mut sa, 0.0, 1.0, &mut counters).is_empty());
    }

    #[test]
    fn identical_bounds_do_not_miss() {
        // Items with equal lb must still be paired.
        let (t0, t1) = (0.0, 5.0);
        let mut sa = vec![item(0, 1.0, 0.0, 0, t0, t1), item(1, 1.0, 0.0, 0, t0, t1)];
        let mut sb = vec![item(0, 1.0, 0.0, 0, t0, t1)];
        let mut counters = JoinCounters::new();
        let got = ps_intersection(&mut sa, &mut sb, t0, t1, &mut counters);
        assert_eq!(got.len(), 2);
    }

    /// SoA sweep emits exactly the AoS sweep's pairs in exactly its
    /// order, with the same comparison count — including duplicate `lb`
    /// values, where the stable AoS sort is mirrored by the SoA
    /// permutation's index tie-break.
    #[test]
    fn soa_matches_aos_output_and_order() {
        let (t0, t1) = (0.0, 30.0);
        // Deterministic pseudo-random layout with plenty of lb ties.
        let mut state = 0x9e37_79b9_u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut mk = |n: usize| -> Vec<MovingRect> {
            (0..n)
                .map(|_| {
                    let x = (rnd() % 40) as f64; // coarse grid => lb ties
                    let y = (rnd() % 40) as f64;
                    let vx = ((rnd() % 5) as f64 - 2.0) * 0.5;
                    MovingRect::rigid(
                        cij_geom::Rect::new([x, y], [x + 3.0, y + 3.0]),
                        [vx, 0.0],
                        0.0,
                    )
                })
                .collect()
        };
        for (na, nb) in [(25usize, 25usize), (1, 40), (40, 1), (0, 10)] {
            let ra = mk(na);
            let rb = mk(nb);
            let mut sa: Vec<SweepItem> = ra
                .iter()
                .enumerate()
                .map(|(i, m)| SweepItem::new(*m, i, 0, t0, t1))
                .collect();
            let mut sb: Vec<SweepItem> = rb
                .iter()
                .enumerate()
                .map(|(i, m)| SweepItem::new(*m, i, 0, t0, t1))
                .collect();
            let mut c_aos = JoinCounters::new();
            let want = ps_intersection(&mut sa, &mut sb, t0, t1, &mut c_aos);

            let mut soa_a = SweepSoa::new();
            let mut soa_b = SweepSoa::new();
            for (i, m) in ra.iter().enumerate() {
                soa_a.push(*m, i as u32, 0, t0, t1);
            }
            for (i, m) in rb.iter().enumerate() {
                soa_b.push(*m, i as u32, 0, t0, t1);
            }
            let mut c_soa = JoinCounters::new();
            let mut got = Vec::new();
            ps_intersection_soa(&mut soa_a, &mut soa_b, t0, t1, &mut c_soa, &mut got);

            let got_usize: Vec<(usize, usize, TimeInterval)> = got
                .iter()
                .map(|&(i, j, iv)| (i as usize, j as usize, iv))
                .collect();
            assert_eq!(want, got_usize, "pairs/order differ at ({na},{nb})");
            assert_eq!(c_aos.entry_comparisons, c_soa.entry_comparisons);
        }
    }

    #[test]
    fn soa_buffers_are_reused_without_allocation_growth() {
        let (t0, t1) = (0.0, 10.0);
        let mut soa_a = SweepSoa::new();
        let mut soa_b = SweepSoa::new();
        let mut out = Vec::new();
        let mut counters = JoinCounters::new();
        let m = MovingRect::rigid(Rect::new([0.0, 0.0], [2.0, 2.0]), [0.1, 0.0], 0.0);
        for _ in 0..3 {
            soa_a.clear();
            soa_b.clear();
            for i in 0..16u32 {
                soa_a.push(m, i, 0, t0, t1);
                soa_b.push(m, i, 0, t0, t1);
            }
            ps_intersection_soa(&mut soa_a, &mut soa_b, t0, t1, &mut counters, &mut out);
            assert_eq!(out.len(), 256);
        }
        assert_eq!(soa_a.len(), 16);
        assert!(!soa_a.is_empty());
    }
}
