//! # cij-join — intersection-join algorithms over TPR-trees
//!
//! Every join algorithm the paper describes or compares against:
//!
//! * [`naive_join`] — §II-C `NaiveJoin`: synchronous traversal of two
//!   TPR-trees computing all join pairs over a window (the unconstrained
//!   `[t_c, ∞)` for the paper's naive baseline; a finite window turns it
//!   into `TC-Join`, §IV-B).
//! * [`tc_join`] — §IV-B: the explicit time-constrained entry point.
//! * [`improved_join`] — §IV-D Fig. 6: NaiveJoin plus the three
//!   TC-enabled improvement techniques, individually toggleable for the
//!   Fig. 8 ablation: plane sweep ([`techniques::PS`]),
//!   dimension selection ([`techniques::DS_PS`]) and intersection
//!   check ([`techniques::IC`]).
//! * [`tp_join`] — §III: Tao & Papadias' time-parameterized join
//!   returning `(current pairs, expiry time, events)`; the building block
//!   of the `ETP-Join` competitor (assembled in `cij-core`).
//! * [`brute`] — the `O(|A|·|B|)` oracle every algorithm is tested
//!   against.
//! * [`parallel_naive_join`] / [`parallel_tc_join`] /
//!   [`parallel_improved_join`] / [`parallel_improved_multi_join`] —
//!   multi-threaded drivers for the above traversals: the worklist is
//!   split at a top node-pair frontier and fanned out over scoped
//!   threads, with outputs merged in traversal order so results (and
//!   counter totals) are bit-identical to the sequential runs.
//!
//! All algorithms read nodes strictly through the trees' buffer pools, so
//! their I/O is accounted exactly like the paper's. The hot traversals
//! are allocation-free in steady state: nodes are `Arc`-shared with the
//! optional decoded-node cache (`cij_storage::DecodedCache`), and the
//! per-visit buffers live in a reusable [`JoinScratch`] pool
//! ([`improved_join_into`] is the buffer-reusing entry point; the
//! `no_alloc` integration test pins the zero-allocation property).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod brute;
mod counters;
mod improved;
#[cfg(feature = "simd")]
mod kernel;
mod naive;
mod pair;
mod parallel;
mod partition;
mod scratch;
mod sweep;
mod tp;

pub use counters::JoinCounters;
pub use improved::{improved_join, improved_join_into, techniques, Techniques};
pub use naive::{naive_join, tc_join};
pub use pair::{assert_pairs_equal, JoinPair};
pub use parallel::{
    fan_out_tasks, parallel_improved_join, parallel_improved_multi_join, parallel_naive_join,
    parallel_tc_join, JoinJob,
};
pub use partition::{partition_join, partition_join_auto, swept_region};
pub use scratch::JoinScratch;
pub use sweep::{ps_intersection, ps_intersection_soa, SweepItem, SweepSoa};
pub use tp::{tp_join, tp_join_best_first, tp_object_probe, TpAnswer, TpProbe};
