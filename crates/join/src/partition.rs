//! Partition-Based Spatial-Merge join (PBSM, Patel & DeWitt SIGMOD '96)
//! adapted to moving objects over a constrained window.
//!
//! The paper's related work (§VII) contrasts index joins with the
//! partition-join family ("there is a rich literature on traditional
//! intersection joins … most of the techniques are not applicable to
//! continuous joins on moving objects"). This module adapts the one that
//! *is* adaptable — PBSM — the same way §IV-D adapts plane sweep: time
//! constraints make a moving rectangle's **swept region** over
//! `[t_s, t_e]` a finite static rectangle (bounds are linear, so extremes
//! sit at the window endpoints). The algorithm:
//!
//! 1. tile the space with a uniform grid;
//! 2. replicate each object into every cell its swept region overlaps;
//! 3. per cell, run the moving plane sweep of §IV-D1 on the two sets;
//! 4. de-duplicate with the *reference-point* rule: a pair is reported
//!    only by the cell containing the lower-left corner of the
//!    intersection of the two swept regions.
//!
//! PBSM has no index to maintain, which makes it a one-shot algorithm:
//! fine for a single (initial) join, useless for continuous maintenance —
//! exactly the trade-off the benchmark harness demonstrates.

use cij_geom::{MovingRect, Rect, Time};
use cij_tpr::ObjectId;

use crate::counters::JoinCounters;
use crate::pair::JoinPair;
use crate::sweep::{ps_intersection, SweepItem};

/// The static rectangle swept by a moving rectangle over `[t_s, t_e]`.
#[must_use]
pub fn swept_region(mbr: &MovingRect, t_s: Time, t_e: Time) -> Rect {
    let (r0, r1) = (mbr.at(t_s), mbr.at(t_e));
    Rect::new(
        [r0.lo[0].min(r1.lo[0]), r0.lo[1].min(r1.lo[1])],
        [r0.hi[0].max(r1.hi[0]), r0.hi[1].max(r1.hi[1])],
    )
}

/// Uniform grid over the joint bounding box of all swept regions.
struct Grid {
    origin: [f64; 2],
    cell: [f64; 2],
    per_axis: usize,
}

impl Grid {
    fn fit(bounds: Rect, per_axis: usize) -> Self {
        let cell = [
            (bounds.extent(0) / per_axis as f64).max(f64::MIN_POSITIVE),
            (bounds.extent(1) / per_axis as f64).max(f64::MIN_POSITIVE),
        ];
        Self {
            origin: bounds.lo,
            cell,
            per_axis,
        }
    }

    fn clamp_axis(&self, i: isize) -> usize {
        i.clamp(0, self.per_axis as isize - 1) as usize
    }

    /// Cell index range `(x0..=x1, y0..=y1)` overlapped by `r`.
    fn cover(&self, r: &Rect) -> (usize, usize, usize, usize) {
        let x0 = self.clamp_axis(((r.lo[0] - self.origin[0]) / self.cell[0]).floor() as isize);
        let x1 = self.clamp_axis(((r.hi[0] - self.origin[0]) / self.cell[0]).floor() as isize);
        let y0 = self.clamp_axis(((r.lo[1] - self.origin[1]) / self.cell[1]).floor() as isize);
        let y1 = self.clamp_axis(((r.hi[1] - self.origin[1]) / self.cell[1]).floor() as isize);
        (x0, x1, y0, y1)
    }

    /// The single cell containing point `p` (clamped to the grid).
    fn locate(&self, p: [f64; 2]) -> (usize, usize) {
        (
            self.clamp_axis(((p[0] - self.origin[0]) / self.cell[0]).floor() as isize),
            self.clamp_axis(((p[1] - self.origin[1]) / self.cell[1]).floor() as isize),
        )
    }

    fn id(&self, x: usize, y: usize) -> usize {
        y * self.per_axis + x
    }
}

/// PBSM over moving objects: all pairs from `a × b` whose rectangles
/// intersect within `[t_s, t_e]`. `cells_per_axis` controls the grid
/// granularity (≈ `√(n / 64)` is a reasonable rule of thumb; see
/// [`partition_join_auto`]).
///
/// ```
/// use cij_geom::{MovingRect, Rect};
/// use cij_join::partition_join;
/// use cij_tpr::ObjectId;
///
/// // A static square and one sweeping into it around t = 5.
/// let a = vec![(
///     ObjectId(1),
///     MovingRect::stationary(Rect::new([50.0, 50.0], [52.0, 52.0]), 0.0),
/// )];
/// let b = vec![(
///     ObjectId(2),
///     MovingRect::rigid(Rect::new([40.0, 50.0], [42.0, 52.0]), [1.6, 0.0], 0.0),
/// )];
/// let (pairs, _) = partition_join(&a, &b, 0.0, 60.0, 4);
/// assert_eq!(pairs.len(), 1);
/// assert!((pairs[0].interval.start - 5.0).abs() < 1e-9);
/// ```
pub fn partition_join(
    a: &[(ObjectId, MovingRect)],
    b: &[(ObjectId, MovingRect)],
    t_s: Time,
    t_e: Time,
    cells_per_axis: usize,
) -> (Vec<JoinPair>, JoinCounters) {
    assert!(t_e.is_finite(), "PBSM requires a time-constrained window");
    assert!(cells_per_axis > 0, "grid needs at least one cell");
    let mut counters = JoinCounters::new();
    let mut out = Vec::new();
    if a.is_empty() || b.is_empty() {
        return (out, counters);
    }

    // Joint bounds of all swept regions.
    let sweep_a: Vec<Rect> = a.iter().map(|(_, m)| swept_region(m, t_s, t_e)).collect();
    let sweep_b: Vec<Rect> = b.iter().map(|(_, m)| swept_region(m, t_s, t_e)).collect();
    let mut bounds = sweep_a[0];
    for r in sweep_a.iter().chain(sweep_b.iter()) {
        bounds.union_assign(r);
    }
    let grid = Grid::fit(bounds, cells_per_axis);

    // Replicate object indexes into cells.
    let n_cells = cells_per_axis * cells_per_axis;
    let mut cells_a: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
    let mut cells_b: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
    for (i, r) in sweep_a.iter().enumerate() {
        let (x0, x1, y0, y1) = grid.cover(r);
        for y in y0..=y1 {
            for x in x0..=x1 {
                cells_a[grid.id(x, y)].push(i);
            }
        }
    }
    for (i, r) in sweep_b.iter().enumerate() {
        let (x0, x1, y0, y1) = grid.cover(r);
        for y in y0..=y1 {
            for x in x0..=x1 {
                cells_b[grid.id(x, y)].push(i);
            }
        }
    }

    // Per-cell moving plane sweep, reference-point de-duplication.
    for cy in 0..cells_per_axis {
        for cx in 0..cells_per_axis {
            let cell_id = grid.id(cx, cy);
            let (ia, ib) = (&cells_a[cell_id], &cells_b[cell_id]);
            if ia.is_empty() || ib.is_empty() {
                continue;
            }
            let mut items_a: Vec<SweepItem> = ia
                .iter()
                .map(|&i| SweepItem::new(a[i].1, i, 0, t_s, t_e))
                .collect();
            let mut items_b: Vec<SweepItem> = ib
                .iter()
                .map(|&i| SweepItem::new(b[i].1, i, 0, t_s, t_e))
                .collect();
            for (i, j, iv) in ps_intersection(&mut items_a, &mut items_b, t_s, t_e, &mut counters) {
                // Reference point: lower-left corner of the overlap of
                // the two swept regions — it lies in exactly one cell.
                let o = sweep_a[i]
                    .intersection(&sweep_b[j])
                    .expect("intersecting pair has overlapping swept regions");
                if grid.locate(o.lo) == (cx, cy) {
                    counters.pairs_emitted += 1;
                    out.push(JoinPair::new(a[i].0, b[j].0, iv));
                }
            }
        }
    }
    (out, counters)
}

/// [`partition_join`] with an automatic grid granularity: aims for ~64
/// objects per cell on the larger input.
pub fn partition_join_auto(
    a: &[(ObjectId, MovingRect)],
    b: &[(ObjectId, MovingRect)],
    t_s: Time,
    t_e: Time,
) -> (Vec<JoinPair>, JoinCounters) {
    let n = a.len().max(b.len()).max(1);
    let cells = ((n as f64 / 64.0).sqrt().ceil() as usize).max(1);
    partition_join(a, b, t_s, t_e, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::pair::assert_pairs_equal;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(rng: &mut StdRng, n: usize, base: u64) -> Vec<(ObjectId, MovingRect)> {
        (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                let s = rng.gen_range(0.2..6.0);
                (
                    ObjectId(base + i as u64),
                    MovingRect::rigid(
                        Rect::new([x, y], [x + s, y + s]),
                        [rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)],
                        0.0,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn swept_region_covers_motion() {
        let m = MovingRect::rigid(Rect::new([0.0, 0.0], [1.0, 1.0]), [2.0, -1.0], 0.0);
        let s = swept_region(&m, 0.0, 10.0);
        assert_eq!(s, Rect::new([0.0, -10.0], [21.0, 1.0]));
        for t in [0.0, 3.7, 10.0] {
            assert!(s.contains_rect(&m.at(t)));
        }
    }

    #[test]
    fn matches_oracle_across_grid_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_set(&mut rng, 300, 0);
        let b = random_set(&mut rng, 300, 10_000);
        let expect = brute::brute_join(&a, &b, 0.0, 60.0);
        for cells in [1, 2, 5, 16, 50] {
            let (got, _) = partition_join(&a, &b, 0.0, 60.0, cells);
            assert_pairs_equal(got, expect.clone(), 1e-7);
        }
    }

    #[test]
    fn auto_grid_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_set(&mut rng, 500, 0);
        let b = random_set(&mut rng, 400, 10_000);
        let (got, counters) = partition_join_auto(&a, &b, 0.0, 60.0);
        assert_pairs_equal(got, brute::brute_join(&a, &b, 0.0, 60.0), 1e-7);
        assert!(counters.entry_comparisons > 0);
    }

    #[test]
    fn no_duplicates_despite_replication() {
        // Big slow objects spanning many cells must still be reported
        // exactly once per pair.
        let a = vec![(
            ObjectId(1),
            MovingRect::rigid(Rect::new([100.0, 100.0], [400.0, 400.0]), [1.0, 1.0], 0.0),
        )];
        let b = vec![(
            ObjectId(2),
            MovingRect::rigid(Rect::new([300.0, 300.0], [600.0, 600.0]), [-1.0, -1.0], 0.0),
        )];
        let (got, _) = partition_join(&a, &b, 0.0, 60.0, 10);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn empty_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_set(&mut rng, 10, 0);
        assert!(partition_join(&a, &[], 0.0, 60.0, 4).0.is_empty());
        assert!(partition_join(&[], &a, 0.0, 60.0, 4).0.is_empty());
    }

    #[test]
    fn partitioning_prunes_comparisons() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_set(&mut rng, 800, 0);
        let b = random_set(&mut rng, 800, 10_000);
        let (_, one_cell) = partition_join(&a, &b, 0.0, 60.0, 1);
        let (_, gridded) = partition_join(&a, &b, 0.0, 60.0, 10);
        assert!(
            gridded.entry_comparisons < one_cell.entry_comparisons,
            "grid {} vs single cell {}",
            gridded.entry_comparisons,
            one_cell.entry_comparisons
        );
    }

    #[test]
    #[should_panic(expected = "time-constrained")]
    fn unbounded_window_rejected() {
        let a = vec![(
            ObjectId(1),
            MovingRect::stationary(Rect::new([0.0, 0.0], [1.0, 1.0]), 0.0),
        )];
        let _ = partition_join(&a, &a.clone(), 0.0, f64::INFINITY, 4);
    }
}
