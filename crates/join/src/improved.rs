//! `ImprovedJoin` (paper §IV-D, Fig. 6): the time-constrained traversal
//! with the three TC-enabled improvement techniques, each independently
//! toggleable so the Fig. 8 ablation can be reproduced:
//!
//! * **PS — plane sweep** (§IV-D1): entries of a node pair are compared
//!   in sweep order instead of all-pairs ([`crate::ps_intersection`]).
//! * **DS — dimension selection** (§IV-D2): the sweep dimension is the
//!   one with the smallest total speed mass, minimizing spurious sweep
//!   overlaps caused by movement.
//! * **IC — intersection check** (§IV-D3): entries are pre-filtered
//!   against the *other* node's region over the window; the interval
//!   during which the two node regions intersect becomes the (strictly
//!   tighter) window for the level below — so the time constraint
//!   tightens as the traversal descends.
//!
//! The kernel is allocation-free in steady state: nodes arrive as
//! [`Arc<Node>`] (shared with the decoded-node cache, so a hot traversal
//! never clones a node), and all per-visit buffers come from a
//! [`JoinScratch`] pool threaded through the recursion.

use std::sync::Arc;

use cij_geom::{Time, TimeInterval};
use cij_tpr::{EntryLanes, Node, TprResult, TprTree};

use crate::counters::JoinCounters;
use crate::pair::JoinPair;
use crate::parallel::{SpillSink, NO_SPILL_BUDGET};
use crate::scratch::{Frame, JoinScratch};
use crate::sweep::ps_intersection_soa;

/// Toggle set for the §IV-D improvement techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Techniques {
    /// Plane sweep instead of nested-loop entry comparison.
    pub plane_sweep: bool,
    /// Choose the sweep dimension by minimal speed mass (implies a
    /// sweep; ignored unless `plane_sweep` is set).
    pub dim_selection: bool,
    /// Pre-filter entries against the other node's region and tighten
    /// the window while descending.
    pub intersection_check: bool,
}

/// Named technique combinations matching the Fig. 8 ablation.
pub mod techniques {
    use super::Techniques;

    /// No improvement techniques (TC-Join's plain traversal).
    pub const NONE: Techniques = Techniques {
        plane_sweep: false,
        dim_selection: false,
        intersection_check: false,
    };
    /// Intersection check only.
    pub const IC: Techniques = Techniques {
        plane_sweep: false,
        dim_selection: false,
        intersection_check: true,
    };
    /// Plane sweep only.
    pub const PS: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: false,
        intersection_check: false,
    };
    /// Dimension selection + plane sweep.
    pub const DS_PS: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: true,
        intersection_check: false,
    };
    /// Intersection check + plane sweep.
    pub const IC_PS: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: false,
        intersection_check: true,
    };
    /// All techniques — the configuration MTB-Join runs with.
    pub const ALL: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: true,
        intersection_check: true,
    };
}

/// `ImprovedJoin`: all join pairs within `[t_s, t_e]`, computed with the
/// selected techniques. `t_e` must be finite — the improvement techniques
/// exist *because* TC processing bounds the window.
///
/// ```
/// use std::sync::Arc;
/// use cij_geom::{MovingRect, Rect};
/// use cij_join::{improved_join, techniques};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut ta = TprTree::new(pool.clone(), TreeConfig::default());
/// let mut tb = TprTree::new(pool, TreeConfig::default());
/// for i in 0..200u64 {
///     let x = (i as f64 * 11.0) % 900.0;
///     ta.insert(ObjectId(i), MovingRect::rigid(
///         Rect::new([x, 0.0], [x + 1.0, 1.0]), [1.0, 0.0], 0.0), 0.0)?;
///     tb.insert(ObjectId(1000 + i), MovingRect::rigid(
///         Rect::new([x + 5.0, 0.0], [x + 6.0, 1.0]), [-1.0, 0.0], 0.0), 0.0)?;
/// }
/// // Every technique combination produces the identical answer; ALL
/// // just gets there with the fewest comparisons.
/// let (all_pairs, all_counters) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL)?;
/// let (none_pairs, none_counters) = improved_join(&ta, &tb, 0.0, 60.0, techniques::NONE)?;
/// assert_eq!(all_pairs.len(), none_pairs.len());
/// assert!(all_counters.entry_comparisons <= none_counters.entry_comparisons);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub fn improved_join(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_s: Time,
    t_e: Time,
    tech: Techniques,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    let mut out = Vec::new();
    let mut scratch = JoinScratch::new();
    let counters = improved_join_into(tree_a, tree_b, t_s, t_e, tech, &mut scratch, &mut out)?;
    Ok((out, counters))
}

/// [`improved_join`] writing into caller-owned buffers: `out` is cleared
/// and refilled, and all traversal temporaries come from `scratch`.
///
/// This is the steady-state entry point for repeated joins (maintenance
/// ticks, benchmarks): after a warm-up call, subsequent calls over trees
/// with a decoded-node cache perform **zero heap allocations** —
/// pinned by the `no_alloc` regression test.
pub fn improved_join_into(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_s: Time,
    t_e: Time,
    tech: Techniques,
    scratch: &mut JoinScratch,
    out: &mut Vec<JoinPair>,
) -> TprResult<JoinCounters> {
    assert!(
        t_e.is_finite(),
        "ImprovedJoin requires a time-constrained window"
    );
    out.clear();
    let mut counters = JoinCounters::new();
    let (Some(root_a), Some(root_b)) = (tree_a.root_page(), tree_b.root_page()) else {
        return Ok(counters);
    };
    let na = tree_a.read_node_arc(root_a)?;
    let nb = tree_b.read_node_arc(root_b)?;
    // `Vec::new()` does not allocate; with an unlimited budget nothing is
    // ever pushed, so this stays allocation-free.
    let mut spill = SpillSink::new();
    join_nodes(
        tree_a,
        &na,
        tree_b,
        &nb,
        t_s,
        t_e,
        tech,
        out,
        &mut counters,
        NO_SPILL_BUDGET,
        &mut spill,
        0,
        scratch,
    )?;
    debug_assert!(spill.is_empty(), "unlimited budget never spills");
    Ok(counters)
}

/// Recursive Fig. 6 traversal. `budget` / `spill` serve the parallel
/// layer exactly as in [`crate::naive`]: once the budget is exhausted,
/// the would-be recursive call (nodes already read, window already
/// tightened) is pushed onto `spill` instead of executed. `depth` /
/// `scratch` select the reusable buffer frame for this recursion level.
#[allow(clippy::too_many_arguments)] // recursive kernel, all state is hot
pub(crate) fn join_nodes(
    tree_a: &TprTree,
    na: &Arc<Node>,
    tree_b: &TprTree,
    nb: &Arc<Node>,
    t_s: Time,
    t_e: Time,
    tech: Techniques,
    out: &mut Vec<JoinPair>,
    counters: &mut JoinCounters,
    budget: usize,
    spill: &mut SpillSink,
    depth: usize,
    scratch: &mut JoinScratch,
) -> TprResult<()> {
    counters.node_pairs += 1;

    let (Some(na_mbr), Some(nb_mbr)) = (na.bounding_mbr(), nb.bounding_mbr()) else {
        return Ok(());
    };

    // Height alignment: descend the deeper side alone.
    if na.level > nb.level {
        for ea in &na.entries {
            counters.entry_comparisons += 1;
            if let Some(iv) = ea.mbr.intersect_interval(&nb_mbr, t_s, t_e) {
                let child = tree_a.read_node_arc(ea.child.page())?;
                let (ws, we) = if tech.intersection_check {
                    (iv.start, iv.end)
                } else {
                    (t_s, t_e)
                };
                if budget == 0 {
                    spill.push((child, Arc::clone(nb), ws, we));
                } else {
                    join_nodes(
                        tree_a,
                        &child,
                        tree_b,
                        nb,
                        ws,
                        we,
                        tech,
                        out,
                        counters,
                        budget - 1,
                        spill,
                        depth + 1,
                        scratch,
                    )?;
                }
            }
        }
        return Ok(());
    }
    if nb.level > na.level {
        for eb in &nb.entries {
            counters.entry_comparisons += 1;
            if let Some(iv) = eb.mbr.intersect_interval(&na_mbr, t_s, t_e) {
                let child = tree_b.read_node_arc(eb.child.page())?;
                let (ws, we) = if tech.intersection_check {
                    (iv.start, iv.end)
                } else {
                    (t_s, t_e)
                };
                if budget == 0 {
                    spill.push((Arc::clone(na), child, ws, we));
                } else {
                    join_nodes(
                        tree_a,
                        na,
                        tree_b,
                        &child,
                        ws,
                        we,
                        tech,
                        out,
                        counters,
                        budget - 1,
                        spill,
                        depth + 1,
                        scratch,
                    )?;
                }
            }
        }
        return Ok(());
    }

    // Same level: take this depth's scratch frame for the duration of the
    // visit (moved out so the recursion below can re-borrow `scratch`).
    let mut frame = scratch.take_frame(depth);
    let result = join_aligned(
        tree_a, na, na_mbr, tree_b, nb, nb_mbr, t_s, t_e, tech, out, counters, budget, spill,
        depth, scratch, &mut frame,
    );
    scratch.put_frame(depth, frame);
    result
}

/// The equal-level body of [`join_nodes`]: IC filter, candidate
/// generation (plane sweep or nested loop), then emit (leaf) or descend.
/// All temporaries live in `frame`; the only vector that grows without
/// bound is `out`.
#[allow(clippy::too_many_arguments)] // recursive kernel, all state is hot
fn join_aligned(
    tree_a: &TprTree,
    na: &Arc<Node>,
    na_mbr: cij_geom::MovingRect,
    tree_b: &TprTree,
    nb: &Arc<Node>,
    nb_mbr: cij_geom::MovingRect,
    t_s: Time,
    t_e: Time,
    tech: Techniques,
    out: &mut Vec<JoinPair>,
    counters: &mut JoinCounters,
    budget: usize,
    spill: &mut SpillSink,
    depth: usize,
    scratch: &mut JoinScratch,
    frame: &mut Frame,
) -> TprResult<()> {
    // Intersection check: clip the window to when the two node regions
    // intersect, and drop entries that never touch the other region.
    // `frame.sa` / `frame.sb` hold the surviving entry *positions*.
    frame.sa.clear();
    frame.sb.clear();
    let win = if tech.intersection_check {
        let Some(win) = na_mbr.intersect_interval(&nb_mbr, t_s, t_e) else {
            counters.ic_pruned += (na.entries.len() + nb.entries.len()) as u64;
            return Ok(());
        };
        // Safety of the filter: an entry pair can only intersect at an
        // instant when both node regions do (children are contained in
        // their node), and each member must touch the *other* node's
        // region at that instant.
        for (i, e) in na.entries.iter().enumerate() {
            if e.mbr
                .intersect_interval(&nb_mbr, win.start, win.end)
                .is_some()
            {
                frame.sa.push(i as u32);
            }
        }
        for (j, e) in nb.entries.iter().enumerate() {
            if e.mbr
                .intersect_interval(&na_mbr, win.start, win.end)
                .is_some()
            {
                frame.sb.push(j as u32);
            }
        }
        counters.ic_pruned +=
            (na.entries.len() - frame.sa.len() + nb.entries.len() - frame.sb.len()) as u64;
        win
    } else {
        frame.sa.extend(0..na.entries.len() as u32);
        frame.sb.extend(0..nb.entries.len() as u32);
        TimeInterval::new_unchecked(t_s, t_e)
    };
    if frame.sa.is_empty() || frame.sb.is_empty() {
        return Ok(());
    }

    // Candidate entry pairs with their intersection intervals, staged in
    // `frame.cands` as positions into `frame.sa` / `frame.sb`.
    if tech.plane_sweep {
        // Dimension selection: smallest total speed mass (§IV-D2).
        let dim = if tech.dim_selection {
            let mass = |d: usize| -> f64 {
                frame
                    .sa
                    .iter()
                    .map(|&i| na.entries[i as usize].mbr.speed_sum(d))
                    .sum::<f64>()
                    + frame
                        .sb
                        .iter()
                        .map(|&j| nb.entries[j as usize].mbr.speed_sum(d))
                        .sum::<f64>()
            };
            if mass(0) <= mass(1) {
                0
            } else {
                1
            }
        } else {
            0
        };
        frame.sweep_a.clear();
        for (pos, &ei) in frame.sa.iter().enumerate() {
            frame.sweep_a.push(
                na.entries[ei as usize].mbr,
                pos as u32,
                dim,
                win.start,
                win.end,
            );
        }
        frame.sweep_b.clear();
        for (pos, &ej) in frame.sb.iter().enumerate() {
            frame.sweep_b.push(
                nb.entries[ej as usize].mbr,
                pos as u32,
                dim,
                win.start,
                win.end,
            );
        }
        ps_intersection_soa(
            &mut frame.sweep_a,
            &mut frame.sweep_b,
            win.start,
            win.end,
            counters,
            &mut frame.cands,
        );
    } else {
        frame.cands.clear();
        for (i, &ea) in frame.sa.iter().enumerate() {
            let ma = na.entries[ea as usize].mbr;
            for (j, &eb) in frame.sb.iter().enumerate() {
                counters.entry_comparisons += 1;
                if let Some(iv) =
                    ma.intersect_interval(&nb.entries[eb as usize].mbr, win.start, win.end)
                {
                    frame.cands.push((i as u32, j as u32, iv));
                }
            }
        }
    }

    if na.is_leaf() {
        for &(i, j, iv) in &frame.cands {
            counters.pairs_emitted += 1;
            out.push(JoinPair::new(
                na.entries[frame.sa[i as usize] as usize].child.object(),
                nb.entries[frame.sb[j as usize] as usize].child.object(),
                iv,
            ));
        }
        return Ok(());
    }

    // Leaf zero-copy fast path: when the children are leaves and neither
    // tree runs a decoded-node cache (which must observe every read for
    // its hit/miss accounting to stay differential-identical), read each
    // leaf's entries straight into SoA lanes — one logical read per
    // child, exactly like `read_node_arc`, but no `Node` materialization
    // and no per-entry `Entry` decode. The leaf-pair join then runs over
    // the lanes with op-for-op identical math, so pairs, counters, and
    // I/O match the `Arc<Node>` path bit-for-bit (pinned by the
    // `cache_differential` suite). Spilling (`budget == 0`) hands out
    // `Arc<Node>` tasks, so it keeps the general path below.
    if na.level == 1 && budget > 0 && !tree_a.has_node_cache() && !tree_b.has_node_cache() {
        let mut leaf = scratch.take_frame(depth + 1);
        let mut result = Ok(());
        for &(i, j, iv) in &frame.cands {
            let pa = na.entries[frame.sa[i as usize] as usize].child.page();
            let pb = nb.entries[frame.sb[j as usize] as usize].child.page();
            result = tree_a
                .read_node_lanes(pa, &mut leaf.lanes_a)
                .and_then(|()| tree_b.read_node_lanes(pb, &mut leaf.lanes_b));
            if result.is_err() {
                break;
            }
            let (ws, we) = if tech.intersection_check {
                (iv.start, iv.end)
            } else {
                (t_s, t_e)
            };
            join_leaf_lanes(ws, we, tech, out, counters, &mut leaf);
        }
        scratch.put_frame(depth + 1, leaf);
        return result;
    }

    for &(i, j, iv) in &frame.cands {
        let ca = tree_a.read_node_arc(na.entries[frame.sa[i as usize] as usize].child.page())?;
        let cb = tree_b.read_node_arc(nb.entries[frame.sb[j as usize] as usize].child.page())?;
        // Fig. 6 passes the pair's own interval down — with IC the window
        // tightens monotonically as the traversal descends.
        let (ws, we) = if tech.intersection_check {
            (iv.start, iv.end)
        } else {
            (t_s, t_e)
        };
        if budget == 0 {
            spill.push((ca, cb, ws, we));
        } else {
            join_nodes(
                tree_a,
                &ca,
                tree_b,
                &cb,
                ws,
                we,
                tech,
                out,
                counters,
                budget - 1,
                spill,
                depth + 1,
                scratch,
            )?;
        }
    }
    Ok(())
}

/// One leaf-pair visit over the zero-copy lanes in `f.lanes_a` /
/// `f.lanes_b`: the [`join_nodes`] + [`join_aligned`] body specialized to
/// two leaves, with every counter increment and every floating-point
/// operation in the same order as the `Arc<Node>` path — the two must
/// stay bit-identical (cache differential suite).
fn join_leaf_lanes(
    t_s: Time,
    t_e: Time,
    tech: Techniques,
    out: &mut Vec<JoinPair>,
    counters: &mut JoinCounters,
    f: &mut Frame,
) {
    counters.node_pairs += 1;
    let (Some(a_mbr), Some(b_mbr)) = (f.lanes_a.bounding_mbr(), f.lanes_b.bounding_mbr()) else {
        return;
    };

    f.sa.clear();
    f.sb.clear();
    let win = if tech.intersection_check {
        let Some(win) = a_mbr.intersect_interval(&b_mbr, t_s, t_e) else {
            counters.ic_pruned += (f.lanes_a.len() + f.lanes_b.len()) as u64;
            return;
        };
        for i in 0..f.lanes_a.len() {
            if f.lanes_a
                .mbr(i)
                .intersect_interval(&b_mbr, win.start, win.end)
                .is_some()
            {
                f.sa.push(i as u32);
            }
        }
        for j in 0..f.lanes_b.len() {
            if f.lanes_b
                .mbr(j)
                .intersect_interval(&a_mbr, win.start, win.end)
                .is_some()
            {
                f.sb.push(j as u32);
            }
        }
        counters.ic_pruned += (f.lanes_a.len() - f.sa.len() + f.lanes_b.len() - f.sb.len()) as u64;
        win
    } else {
        f.sa.extend(0..f.lanes_a.len() as u32);
        f.sb.extend(0..f.lanes_b.len() as u32);
        TimeInterval::new_unchecked(t_s, t_e)
    };
    if f.sa.is_empty() || f.sb.is_empty() {
        return;
    }

    if tech.plane_sweep {
        let dim = if tech.dim_selection {
            let mass = |lanes: &EntryLanes, sel: &[u32], d: usize| -> f64 {
                sel.iter()
                    .map(|&i| lanes.mbr(i as usize).speed_sum(d))
                    .sum::<f64>()
            };
            // Summation order matches `join_aligned`: side `a` first.
            let m0 = mass(&f.lanes_a, &f.sa, 0) + mass(&f.lanes_b, &f.sb, 0);
            let m1 = mass(&f.lanes_a, &f.sa, 1) + mass(&f.lanes_b, &f.sb, 1);
            if m0 <= m1 {
                0
            } else {
                1
            }
        } else {
            0
        };
        if tech.intersection_check {
            f.sweep_a.clear();
            for (pos, &ei) in f.sa.iter().enumerate() {
                f.sweep_a.push_from_lanes(
                    &f.lanes_a,
                    ei as usize,
                    pos as u32,
                    dim,
                    win.start,
                    win.end,
                );
            }
            f.sweep_b.clear();
            for (pos, &ej) in f.sb.iter().enumerate() {
                f.sweep_b.push_from_lanes(
                    &f.lanes_b,
                    ej as usize,
                    pos as u32,
                    dim,
                    win.start,
                    win.end,
                );
            }
        } else {
            // Identity selection: refill whole lanes in bulk, no
            // per-entry gather at all.
            f.sweep_a
                .fill_all_from_lanes(&f.lanes_a, dim, win.start, win.end);
            f.sweep_b
                .fill_all_from_lanes(&f.lanes_b, dim, win.start, win.end);
        }
        ps_intersection_soa(
            &mut f.sweep_a,
            &mut f.sweep_b,
            win.start,
            win.end,
            counters,
            &mut f.cands,
        );
    } else {
        f.cands.clear();
        for (i, &ea) in f.sa.iter().enumerate() {
            let ma = f.lanes_a.mbr(ea as usize);
            for (j, &eb) in f.sb.iter().enumerate() {
                counters.entry_comparisons += 1;
                if let Some(iv) =
                    ma.intersect_interval(&f.lanes_b.mbr(eb as usize), win.start, win.end)
                {
                    f.cands.push((i as u32, j as u32, iv));
                }
            }
        }
    }

    for &(i, j, iv) in &f.cands {
        counters.pairs_emitted += 1;
        out.push(JoinPair::new(
            f.lanes_a.object(f.sa[i as usize] as usize),
            f.lanes_b.object(f.sb[j as usize] as usize),
            iv,
        ));
    }
}
