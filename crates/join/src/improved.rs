//! `ImprovedJoin` (paper §IV-D, Fig. 6): the time-constrained traversal
//! with the three TC-enabled improvement techniques, each independently
//! toggleable so the Fig. 8 ablation can be reproduced:
//!
//! * **PS — plane sweep** (§IV-D1): entries of a node pair are compared
//!   in sweep order instead of all-pairs ([`crate::ps_intersection`]).
//! * **DS — dimension selection** (§IV-D2): the sweep dimension is the
//!   one with the smallest total speed mass, minimizing spurious sweep
//!   overlaps caused by movement.
//! * **IC — intersection check** (§IV-D3): entries are pre-filtered
//!   against the *other* node's region over the window; the interval
//!   during which the two node regions intersect becomes the (strictly
//!   tighter) window for the level below — so the time constraint
//!   tightens as the traversal descends.

use cij_geom::{Time, TimeInterval};
use cij_tpr::{Entry, Node, TprResult, TprTree};

use crate::counters::JoinCounters;
use crate::pair::JoinPair;
use crate::parallel::{SpillSink, NO_SPILL_BUDGET};
use crate::sweep::{ps_intersection, SweepItem};

/// Toggle set for the §IV-D improvement techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Techniques {
    /// Plane sweep instead of nested-loop entry comparison.
    pub plane_sweep: bool,
    /// Choose the sweep dimension by minimal speed mass (implies a
    /// sweep; ignored unless `plane_sweep` is set).
    pub dim_selection: bool,
    /// Pre-filter entries against the other node's region and tighten
    /// the window while descending.
    pub intersection_check: bool,
}

/// Named technique combinations matching the Fig. 8 ablation.
pub mod techniques {
    use super::Techniques;

    /// No improvement techniques (TC-Join's plain traversal).
    pub const NONE: Techniques = Techniques {
        plane_sweep: false,
        dim_selection: false,
        intersection_check: false,
    };
    /// Intersection check only.
    pub const IC: Techniques = Techniques {
        plane_sweep: false,
        dim_selection: false,
        intersection_check: true,
    };
    /// Plane sweep only.
    pub const PS: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: false,
        intersection_check: false,
    };
    /// Dimension selection + plane sweep.
    pub const DS_PS: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: true,
        intersection_check: false,
    };
    /// Intersection check + plane sweep.
    pub const IC_PS: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: false,
        intersection_check: true,
    };
    /// All techniques — the configuration MTB-Join runs with.
    pub const ALL: Techniques = Techniques {
        plane_sweep: true,
        dim_selection: true,
        intersection_check: true,
    };
}

/// `ImprovedJoin`: all join pairs within `[t_s, t_e]`, computed with the
/// selected techniques. `t_e` must be finite — the improvement techniques
/// exist *because* TC processing bounds the window.
///
/// ```
/// use std::sync::Arc;
/// use cij_geom::{MovingRect, Rect};
/// use cij_join::{improved_join, techniques};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut ta = TprTree::new(pool.clone(), TreeConfig::default());
/// let mut tb = TprTree::new(pool, TreeConfig::default());
/// for i in 0..200u64 {
///     let x = (i as f64 * 11.0) % 900.0;
///     ta.insert(ObjectId(i), MovingRect::rigid(
///         Rect::new([x, 0.0], [x + 1.0, 1.0]), [1.0, 0.0], 0.0), 0.0)?;
///     tb.insert(ObjectId(1000 + i), MovingRect::rigid(
///         Rect::new([x + 5.0, 0.0], [x + 6.0, 1.0]), [-1.0, 0.0], 0.0), 0.0)?;
/// }
/// // Every technique combination produces the identical answer; ALL
/// // just gets there with the fewest comparisons.
/// let (all_pairs, all_counters) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL)?;
/// let (none_pairs, none_counters) = improved_join(&ta, &tb, 0.0, 60.0, techniques::NONE)?;
/// assert_eq!(all_pairs.len(), none_pairs.len());
/// assert!(all_counters.entry_comparisons <= none_counters.entry_comparisons);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub fn improved_join(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_s: Time,
    t_e: Time,
    tech: Techniques,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    assert!(
        t_e.is_finite(),
        "ImprovedJoin requires a time-constrained window"
    );
    let mut out = Vec::new();
    let mut counters = JoinCounters::new();
    let (Some(root_a), Some(root_b)) = (tree_a.root_page(), tree_b.root_page()) else {
        return Ok((out, counters));
    };
    let na = tree_a.read_node(root_a)?;
    let nb = tree_b.read_node(root_b)?;
    join_nodes(
        tree_a,
        &na,
        tree_b,
        &nb,
        t_s,
        t_e,
        tech,
        &mut out,
        &mut counters,
        NO_SPILL_BUDGET,
        &mut Vec::new(),
    )?;
    Ok((out, counters))
}

/// Recursive Fig. 6 traversal. `budget` / `spill` serve the parallel
/// layer exactly as in [`crate::naive`]: once the budget is exhausted,
/// the would-be recursive call (nodes already read, window already
/// tightened) is pushed onto `spill` instead of executed.
#[allow(clippy::too_many_arguments)] // recursive kernel, all state is hot
pub(crate) fn join_nodes(
    tree_a: &TprTree,
    na: &Node,
    tree_b: &TprTree,
    nb: &Node,
    t_s: Time,
    t_e: Time,
    tech: Techniques,
    out: &mut Vec<JoinPair>,
    counters: &mut JoinCounters,
    budget: usize,
    spill: &mut SpillSink,
) -> TprResult<()> {
    counters.node_pairs += 1;

    let (Some(na_mbr), Some(nb_mbr)) = (na.bounding_mbr(), nb.bounding_mbr()) else {
        return Ok(());
    };

    // Height alignment: descend the deeper side alone.
    if na.level > nb.level {
        for ea in &na.entries {
            counters.entry_comparisons += 1;
            if let Some(iv) = ea.mbr.intersect_interval(&nb_mbr, t_s, t_e) {
                let child = tree_a.read_node(ea.child.page())?;
                let (ws, we) = if tech.intersection_check {
                    (iv.start, iv.end)
                } else {
                    (t_s, t_e)
                };
                if budget == 0 {
                    spill.push((child, nb.clone(), ws, we));
                } else {
                    join_nodes(
                        tree_a,
                        &child,
                        tree_b,
                        nb,
                        ws,
                        we,
                        tech,
                        out,
                        counters,
                        budget - 1,
                        spill,
                    )?;
                }
            }
        }
        return Ok(());
    }
    if nb.level > na.level {
        for eb in &nb.entries {
            counters.entry_comparisons += 1;
            if let Some(iv) = eb.mbr.intersect_interval(&na_mbr, t_s, t_e) {
                let child = tree_b.read_node(eb.child.page())?;
                let (ws, we) = if tech.intersection_check {
                    (iv.start, iv.end)
                } else {
                    (t_s, t_e)
                };
                if budget == 0 {
                    spill.push((na.clone(), child, ws, we));
                } else {
                    join_nodes(
                        tree_a,
                        na,
                        tree_b,
                        &child,
                        ws,
                        we,
                        tech,
                        out,
                        counters,
                        budget - 1,
                        spill,
                    )?;
                }
            }
        }
        return Ok(());
    }

    // Intersection check: clip the window to when the two node regions
    // intersect, and drop entries that never touch the other region.
    let (win, sa, sb): (TimeInterval, Vec<&Entry>, Vec<&Entry>) = if tech.intersection_check {
        let Some(win) = na_mbr.intersect_interval(&nb_mbr, t_s, t_e) else {
            counters.ic_pruned += (na.entries.len() + nb.entries.len()) as u64;
            return Ok(());
        };
        fn filter<'e>(
            entries: &'e [Entry],
            other: &cij_geom::MovingRect,
            win: TimeInterval,
        ) -> Vec<&'e Entry> {
            entries
                .iter()
                .filter(|e| {
                    e.mbr
                        .intersect_interval(other, win.start, win.end)
                        .is_some()
                })
                .collect()
        }
        // Safety of the filter: an entry pair can only intersect at an
        // instant when both node regions do (children are contained in
        // their node), and each member must touch the *other* node's
        // region at that instant.
        let sa: Vec<&Entry> = filter(&na.entries, &nb_mbr, win);
        let sb: Vec<&Entry> = filter(&nb.entries, &na_mbr, win);
        counters.ic_pruned += (na.entries.len() - sa.len() + nb.entries.len() - sb.len()) as u64;
        (win, sa, sb)
    } else {
        (
            TimeInterval::new_unchecked(t_s, t_e),
            na.entries.iter().collect(),
            nb.entries.iter().collect(),
        )
    };
    if sa.is_empty() || sb.is_empty() {
        return Ok(());
    }

    // Candidate entry pairs with their intersection intervals.
    let candidates: Vec<(usize, usize, TimeInterval)> = if tech.plane_sweep {
        // Dimension selection: smallest total speed mass (§IV-D2).
        let dim = if tech.dim_selection {
            let mass =
                |d: usize| -> f64 { sa.iter().chain(sb.iter()).map(|e| e.mbr.speed_sum(d)).sum() };
            if mass(0) <= mass(1) {
                0
            } else {
                1
            }
        } else {
            0
        };
        let mut items_a: Vec<SweepItem> = sa
            .iter()
            .enumerate()
            .map(|(i, e)| SweepItem::new(e.mbr, i, dim, win.start, win.end))
            .collect();
        let mut items_b: Vec<SweepItem> = sb
            .iter()
            .enumerate()
            .map(|(i, e)| SweepItem::new(e.mbr, i, dim, win.start, win.end))
            .collect();
        ps_intersection(&mut items_a, &mut items_b, win.start, win.end, counters)
    } else {
        let mut cands = Vec::new();
        for (i, ea) in sa.iter().enumerate() {
            for (j, eb) in sb.iter().enumerate() {
                counters.entry_comparisons += 1;
                if let Some(iv) = ea.mbr.intersect_interval(&eb.mbr, win.start, win.end) {
                    cands.push((i, j, iv));
                }
            }
        }
        cands
    };

    if na.is_leaf() {
        for (i, j, iv) in candidates {
            counters.pairs_emitted += 1;
            out.push(JoinPair::new(
                sa[i].child.object(),
                sb[j].child.object(),
                iv,
            ));
        }
        return Ok(());
    }
    for (i, j, iv) in candidates {
        let ca = tree_a.read_node(sa[i].child.page())?;
        let cb = tree_b.read_node(sb[j].child.page())?;
        // Fig. 6 passes the pair's own interval down — with IC the window
        // tightens monotonically as the traversal descends.
        let (ws, we) = if tech.intersection_check {
            (iv.start, iv.end)
        } else {
            (t_s, t_e)
        };
        if budget == 0 {
            spill.push((ca, cb, ws, we));
        } else {
            join_nodes(
                tree_a,
                &ca,
                tree_b,
                &cb,
                ws,
                we,
                tech,
                out,
                counters,
                budget - 1,
                spill,
            )?;
        }
    }
    Ok(())
}
