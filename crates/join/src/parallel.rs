//! Parallel execution of the synchronous-traversal joins.
//!
//! The sequential kernels in [`crate::naive`] and [`crate::improved`] are
//! depth-first traversals over node *pairs*. This module splits such a
//! traversal at a top frontier of node pairs and fans the frontier out
//! over `std::thread::scope` workers, then merges the per-task outputs in
//! frontier order. Because
//!
//! 1. the frontier is built by running the sequential kernel itself with a
//!    recursion budget of zero (each would-be recursive call is captured as
//!    a task instead of executed, nodes already read and window already
//!    tightened), and
//! 2. each task is executed by the unmodified sequential kernel, and
//! 3. task outputs are concatenated in task order — which is exactly the
//!    depth-first visit order of the sequential traversal,
//!
//! the merged pair list is **bit-identical** to the sequential result,
//! including its order, and the merged [`JoinCounters`] sum to exactly the
//! sequential totals. Logical I/O is also identical: a task stores nodes
//! its *parent* level already read, precisely as the sequential recursion
//! passes already-read nodes down. Only physical I/O (buffer-pool
//! hit/miss patterns) may differ under concurrency.
//!
//! `threads <= 1` falls back to the plain sequential entry points.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cij_geom::{Time, INFINITE_TIME};
use cij_tpr::{Node, TprResult, TprTree};

use crate::counters::JoinCounters;
use crate::improved::{improved_join, Techniques};
use crate::naive::{naive_join, tc_join};
use crate::pair::JoinPair;
use crate::scratch::JoinScratch;

/// A deferred recursive call captured by a kernel running with budget 0:
/// `(node_a, node_b, window_start, window_end)`. Nodes are `Arc`-shared
/// with the decoded-node cache, so capturing a task never deep-clones a
/// node.
pub(crate) type SpillSink = Vec<(Arc<Node>, Arc<Node>, Time, Time)>;

/// Recursion budget that is never exhausted: tree heights are bounded by
/// `u8::MAX`, so sequential entry points can pass this and never spill.
pub(crate) const NO_SPILL_BUDGET: usize = usize::MAX;

/// Frontier tasks per worker thread: enough over-subscription that the
/// atomic-cursor work stealing evens out skewed subtree sizes.
const TASKS_PER_THREAD: usize = 8;

/// Which sequential kernel a job runs.
#[derive(Clone, Copy)]
enum Kernel {
    Naive,
    Improved(Techniques),
}

/// One tree pair plus processing window, resolved against a kernel.
struct JobSpec<'t> {
    tree_a: &'t TprTree,
    tree_b: &'t TprTree,
    t_s: Time,
    t_e: Time,
    kernel: Kernel,
}

/// A unit of deferred traversal work: a node pair (already read from the
/// pool), the window to process it under, and the job it belongs to.
struct Task {
    job: usize,
    na: Arc<Node>,
    nb: Arc<Node>,
    ws: Time,
    we: Time,
}

impl Task {
    /// A task can be expanded into sub-tasks unless it is an equal-level
    /// leaf pair — the only shape whose processing emits pairs directly.
    fn expandable(&self) -> bool {
        !(self.na.level == self.nb.level && self.na.is_leaf())
    }

    /// Expansion priority: shallower (higher-level) pairs first, so the
    /// frontier widens breadth-first and subtree sizes stay comparable.
    fn level_sum(&self) -> u16 {
        self.na.level as u16 + self.nb.level as u16
    }
}

/// One bucket-pair job for [`parallel_improved_multi_join`].
#[derive(Clone, Copy)]
pub struct JoinJob<'t> {
    /// Left join input.
    pub tree_a: &'t TprTree,
    /// Right join input.
    pub tree_b: &'t TprTree,
    /// Processing-window start.
    pub t_s: Time,
    /// Processing-window end; must be finite (ImprovedJoin semantics).
    pub t_e: Time,
}

/// Parallel [`naive_join`]: identical output, counters, and logical I/O,
/// computed by `threads` workers. `threads <= 1` is exactly `naive_join`.
pub fn parallel_naive_join(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_c: Time,
    threads: usize,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    if threads <= 1 {
        return naive_join(tree_a, tree_b, t_c);
    }
    let jobs = [JobSpec {
        tree_a,
        tree_b,
        t_s: t_c,
        t_e: INFINITE_TIME,
        kernel: Kernel::Naive,
    }];
    run_jobs(&jobs, threads).map(into_single)
}

/// Parallel [`tc_join`]: identical output, counters, and logical I/O,
/// computed by `threads` workers. `threads <= 1` is exactly `tc_join`.
pub fn parallel_tc_join(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_s: Time,
    t_e: Time,
    threads: usize,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    if threads <= 1 {
        return tc_join(tree_a, tree_b, t_s, t_e);
    }
    let jobs = [JobSpec {
        tree_a,
        tree_b,
        t_s,
        t_e,
        kernel: Kernel::Naive,
    }];
    run_jobs(&jobs, threads).map(into_single)
}

/// Parallel [`improved_join`]: identical output, counters, and logical
/// I/O, computed by `threads` workers. `threads <= 1` is exactly
/// `improved_join`.
///
/// ```
/// use std::sync::Arc;
/// use cij_geom::{MovingRect, Rect};
/// use cij_join::{improved_join, parallel_improved_join, techniques};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut ta = TprTree::new(pool.clone(), TreeConfig::default());
/// let mut tb = TprTree::new(pool, TreeConfig::default());
/// for i in 0..300u64 {
///     let x = (i as f64 * 7.0) % 500.0;
///     ta.insert(ObjectId(i), MovingRect::rigid(
///         Rect::new([x, 0.0], [x + 1.0, 1.0]), [0.5, 0.0], 0.0), 0.0)?;
///     tb.insert(ObjectId(1000 + i), MovingRect::rigid(
///         Rect::new([x + 3.0, 0.0], [x + 4.0, 1.0]), [-0.5, 0.0], 0.0), 0.0)?;
/// }
/// let (seq, seq_counters) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL)?;
/// let (par, par_counters) = parallel_improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL, 4)?;
/// assert_eq!(seq, par); // bit-identical, order included
/// assert_eq!(seq_counters, par_counters);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub fn parallel_improved_join(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_s: Time,
    t_e: Time,
    tech: Techniques,
    threads: usize,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    if threads <= 1 {
        return improved_join(tree_a, tree_b, t_s, t_e, tech);
    }
    assert!(
        t_e.is_finite(),
        "ImprovedJoin requires a time-constrained window"
    );
    let jobs = [JobSpec {
        tree_a,
        tree_b,
        t_s,
        t_e,
        kernel: Kernel::Improved(tech),
    }];
    run_jobs(&jobs, threads).map(into_single)
}

/// Runs several [`improved_join`] jobs (e.g. MTB-Join's bucket pairs)
/// over one shared worklist of `threads` workers. Per job, the result is
/// bit-identical to `improved_join` on that job alone; the shared
/// worklist means a single large bucket pair still fans out across all
/// workers. `threads <= 1` runs the jobs sequentially in order.
pub fn parallel_improved_multi_join(
    jobs: &[JoinJob<'_>],
    tech: Techniques,
    threads: usize,
) -> TprResult<Vec<(Vec<JoinPair>, JoinCounters)>> {
    if threads <= 1 {
        return jobs
            .iter()
            .map(|j| improved_join(j.tree_a, j.tree_b, j.t_s, j.t_e, tech))
            .collect();
    }
    for j in jobs {
        assert!(
            j.t_e.is_finite(),
            "ImprovedJoin requires a time-constrained window"
        );
    }
    let specs: Vec<JobSpec<'_>> = jobs
        .iter()
        .map(|j| JobSpec {
            tree_a: j.tree_a,
            tree_b: j.tree_b,
            t_s: j.t_s,
            t_e: j.t_e,
            kernel: Kernel::Improved(tech),
        })
        .collect();
    run_jobs(&specs, threads)
}

fn into_single(mut results: Vec<(Vec<JoinPair>, JoinCounters)>) -> (Vec<JoinPair>, JoinCounters) {
    results.pop().expect("single-job run returns one result")
}

/// Runs one kernel invocation for `task`, sequentially, to completion.
/// `scratch` is the calling worker's buffer pool, reused across tasks.
fn run_task(
    jobs: &[JobSpec<'_>],
    task: &Task,
    scratch: &mut JoinScratch,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    let job = &jobs[task.job];
    let mut out = Vec::new();
    let mut counters = JoinCounters::new();
    let mut spill = Vec::new();
    match job.kernel {
        Kernel::Naive => crate::naive::join_nodes(
            job.tree_a,
            &task.na,
            job.tree_b,
            &task.nb,
            task.ws,
            task.we,
            &mut out,
            &mut counters,
            NO_SPILL_BUDGET,
            &mut spill,
        )?,
        Kernel::Improved(tech) => crate::improved::join_nodes(
            job.tree_a,
            &task.na,
            job.tree_b,
            &task.nb,
            task.ws,
            task.we,
            tech,
            &mut out,
            &mut counters,
            NO_SPILL_BUDGET,
            &mut spill,
            0,
            scratch,
        )?,
    }
    debug_assert!(spill.is_empty(), "unbounded budget must never spill");
    Ok((out, counters))
}

/// Expands `task` one level: the kernel processes the node pair with a
/// recursion budget of zero, so every qualifying child pair lands in the
/// returned sub-task list instead of being traversed. Counter increments
/// and node reads performed here are exactly the ones the sequential
/// traversal performs at this pair.
fn expand_task(
    jobs: &[JobSpec<'_>],
    task: &Task,
    counters: &mut JoinCounters,
    scratch: &mut JoinScratch,
) -> TprResult<Vec<Task>> {
    let job = &jobs[task.job];
    let mut out = Vec::new();
    let mut spill = Vec::new();
    match job.kernel {
        Kernel::Naive => crate::naive::join_nodes(
            job.tree_a, &task.na, job.tree_b, &task.nb, task.ws, task.we, &mut out, counters, 0,
            &mut spill,
        )?,
        Kernel::Improved(tech) => crate::improved::join_nodes(
            job.tree_a, &task.na, job.tree_b, &task.nb, task.ws, task.we, tech, &mut out, counters,
            0, &mut spill, 0, scratch,
        )?,
    }
    debug_assert!(
        out.is_empty(),
        "only equal-level leaf pairs emit, and those never expand"
    );
    Ok(spill
        .into_iter()
        .map(|(na, nb, ws, we)| Task {
            job: task.job,
            na,
            nb,
            ws,
            we,
        })
        .collect())
}

/// The parallel driver: seed root tasks, widen the frontier, execute it
/// with scoped workers, and merge in task order.
fn run_jobs(jobs: &[JobSpec<'_>], threads: usize) -> TprResult<Vec<(Vec<JoinPair>, JoinCounters)>> {
    let mut results: Vec<(Vec<JoinPair>, JoinCounters)> = jobs
        .iter()
        .map(|_| (Vec::new(), JoinCounters::new()))
        .collect();
    // Per-job counters accumulated while building the frontier (that work
    // runs on this thread and is part of the sequential traversal).
    let mut base: Vec<JoinCounters> = vec![JoinCounters::new(); jobs.len()];

    // Seed: one root-pair task per non-empty job, in job order.
    let mut tasks: Vec<Task> = Vec::new();
    for (job, spec) in jobs.iter().enumerate() {
        let (Some(root_a), Some(root_b)) = (spec.tree_a.root_page(), spec.tree_b.root_page())
        else {
            continue;
        };
        let na = spec.tree_a.read_node_arc(root_a)?;
        let nb = spec.tree_b.read_node_arc(root_b)?;
        tasks.push(Task {
            job,
            na,
            nb,
            ws: spec.t_s,
            we: spec.t_e,
        });
    }

    // Widen: repeatedly expand the shallowest expandable task in place,
    // keeping depth-first order, until the frontier is wide enough for
    // the worker count (or nothing is left to expand).
    let target = threads * TASKS_PER_THREAD;
    let mut expand_scratch = JoinScratch::new();
    while tasks.len() < target {
        let mut pick: Option<(usize, u16)> = None;
        for (i, t) in tasks.iter().enumerate() {
            if t.expandable() && pick.is_none_or(|(_, best)| t.level_sum() > best) {
                pick = Some((i, t.level_sum()));
            }
        }
        let Some((i, _)) = pick else { break };
        let sub = expand_task(
            jobs,
            &tasks[i],
            &mut base[tasks[i].job],
            &mut expand_scratch,
        )?;
        tasks.splice(i..=i, sub);
    }

    // Execute: workers pull task indices from a shared cursor and run the
    // unmodified sequential kernel per task.
    type Slot = Option<TprResult<(Vec<JoinPair>, JoinCounters)>>;
    let worker_count = threads.min(tasks.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Slot> = (0..tasks.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..worker_count)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    // One scratch pool per worker, reused across tasks.
                    let mut scratch = JoinScratch::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        local.push((i, run_task(jobs, task, &mut scratch)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = handle
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p));
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
    });

    // Merge in task order: concatenation reproduces the depth-first
    // emission order of the sequential traversal exactly. Errors, if any,
    // surface at the earliest failing task — deterministically.
    for (task, slot) in tasks.iter().zip(slots) {
        let (pairs, counters) = slot.expect("every task index below the cursor is executed")?;
        let (out, total) = &mut results[task.job];
        out.extend(pairs);
        *total = total.merged(counters);
    }
    for (base, (_, total)) in base.into_iter().zip(results.iter_mut()) {
        *total = total.merged(base);
    }
    Ok(results)
}

/// Fans `count` independent tasks out over at most `threads` scoped
/// workers sharing one atomic-cursor worklist (the same work-stealing
/// discipline as the join frontier above), and returns the results in
/// task order — so callers observe output identical to the sequential
/// `(0..count).map(run).collect()` no matter how the work interleaved.
///
/// `threads <= 1` (or a single task) runs the exact sequential path.
/// This is the fan-out primitive the shard coordinator uses to drive
/// independent shard-pair engines.
pub fn fan_out_tasks<R, F>(count: usize, threads: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(run).collect();
    }
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(count);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let run = &run;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    local.push((i, run(i)));
                }
                local
            }));
        }
        for handle in handles {
            for (i, r) in handle.join().expect("fan-out worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task index below the cursor is executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cij_geom::{MovingRect, Rect};
    use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
    use cij_tpr::{ObjectId, TreeConfig};

    use super::*;
    use crate::improved::techniques;

    /// Two trees of `n` objects each, streams moving toward each other.
    fn build_trees(n: u64) -> (TprTree, TprTree) {
        let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
        let mut ta = TprTree::new(pool.clone(), TreeConfig::default());
        let mut tb = TprTree::new(pool, TreeConfig::default());
        for i in 0..n {
            let x = (i as f64 * 13.0) % 700.0;
            let y = (i as f64 * 29.0) % 700.0;
            ta.insert(
                ObjectId(i),
                MovingRect::rigid(Rect::new([x, y], [x + 2.0, y + 2.0]), [1.0, -0.5], 0.0),
                0.0,
            )
            .expect("insert a");
            tb.insert(
                ObjectId(100_000 + i),
                MovingRect::rigid(
                    Rect::new([x + 4.0, y + 1.0], [x + 6.0, y + 3.0]),
                    [-1.0, 0.5],
                    0.0,
                ),
                0.0,
            )
            .expect("insert b");
        }
        (ta, tb)
    }

    #[test]
    fn parallel_improved_matches_sequential_for_all_techniques() {
        let (ta, tb) = build_trees(400);
        for tech in [
            techniques::NONE,
            techniques::IC,
            techniques::PS,
            techniques::DS_PS,
            techniques::IC_PS,
            techniques::ALL,
        ] {
            let (seq, seq_c) = improved_join(&ta, &tb, 0.0, 60.0, tech).expect("seq");
            assert!(!seq.is_empty(), "workload must produce pairs");
            for threads in [2, 3, 4, 8] {
                let (par, par_c) =
                    parallel_improved_join(&ta, &tb, 0.0, 60.0, tech, threads).expect("par");
                assert_eq!(seq, par, "pairs differ at threads={threads}");
                assert_eq!(seq_c, par_c, "counters differ at threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_naive_and_tc_match_sequential() {
        let (ta, tb) = build_trees(300);
        let (seq_n, seq_nc) = naive_join(&ta, &tb, 0.0).expect("seq naive");
        let (seq_t, seq_tc) = tc_join(&ta, &tb, 0.0, 60.0).expect("seq tc");
        for threads in [2, 4, 8] {
            let (par_n, par_nc) = parallel_naive_join(&ta, &tb, 0.0, threads).expect("par naive");
            assert_eq!(seq_n, par_n);
            assert_eq!(seq_nc, par_nc);
            let (par_t, par_tc) = parallel_tc_join(&ta, &tb, 0.0, 60.0, threads).expect("par tc");
            assert_eq!(seq_t, par_t);
            assert_eq!(seq_tc, par_tc);
        }
    }

    #[test]
    fn multi_join_matches_per_job_sequential() {
        let (ta, tb) = build_trees(250);
        let (tc, td) = build_trees(120);
        let jobs = [
            JoinJob {
                tree_a: &ta,
                tree_b: &tb,
                t_s: 0.0,
                t_e: 60.0,
            },
            JoinJob {
                tree_a: &tc,
                tree_b: &td,
                t_s: 10.0,
                t_e: 45.0,
            },
            JoinJob {
                tree_a: &ta,
                tree_b: &td,
                t_s: 0.0,
                t_e: 30.0,
            },
        ];
        let seq: Vec<_> = jobs
            .iter()
            .map(|j| improved_join(j.tree_a, j.tree_b, j.t_s, j.t_e, techniques::ALL).expect("seq"))
            .collect();
        for threads in [2, 4, 8] {
            let par = parallel_improved_multi_join(&jobs, techniques::ALL, threads).expect("par");
            assert_eq!(seq, par, "multi-join differs at threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_handled() {
        let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
        let empty_a = TprTree::new(pool.clone(), TreeConfig::default());
        let empty_b = TprTree::new(pool.clone(), TreeConfig::default());
        let (pairs, counters) =
            parallel_improved_join(&empty_a, &empty_b, 0.0, 60.0, techniques::ALL, 4)
                .expect("empty");
        assert!(pairs.is_empty());
        assert_eq!(counters, JoinCounters::new());

        // One object per side: the frontier is a single root (leaf) pair.
        let mut ta = TprTree::new(pool.clone(), TreeConfig::default());
        let mut tb = TprTree::new(pool, TreeConfig::default());
        ta.insert(
            ObjectId(1),
            MovingRect::rigid(Rect::new([0.0, 0.0], [2.0, 2.0]), [1.0, 0.0], 0.0),
            0.0,
        )
        .expect("insert");
        tb.insert(
            ObjectId(2),
            MovingRect::stationary(Rect::new([30.0, 0.0], [32.0, 2.0]), 0.0),
            0.0,
        )
        .expect("insert");
        let (seq, seq_c) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL).expect("seq");
        let (par, par_c) =
            parallel_improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL, 8).expect("par");
        assert_eq!(seq, par);
        assert_eq!(seq_c, par_c);
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn threads_one_delegates_to_sequential() {
        let (ta, tb) = build_trees(150);
        let (seq, seq_c) = improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL).expect("seq");
        let (one, one_c) =
            parallel_improved_join(&ta, &tb, 0.0, 60.0, techniques::ALL, 1).expect("one");
        assert_eq!(seq, one);
        assert_eq!(seq_c, one_c);
    }

    #[test]
    fn fan_out_preserves_task_order() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(fan_out_tasks(97, threads, |i| i * i), expected);
        }
        assert_eq!(fan_out_tasks(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out_tasks(1, 4, |i| i + 10), vec![10]);
    }
}
