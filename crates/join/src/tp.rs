//! The time-parameterized join (paper §III, after Tao & Papadias,
//! SIGMOD 2002): the building block of the `ETP-Join` competitor.
//!
//! `TP-Join(t_c)` returns the triple *(current result, expiry time,
//! events)*: the pairs intersecting at `t_c`, the earliest future time at
//! which the result changes, and the object pair(s) whose status flips
//! then. A synchronous traversal descends a node pair iff
//!
//! 1. the node regions intersect at `t_c` (to enumerate current pairs), or
//! 2. the regions' first-contact time does not exceed the best influence
//!    time found so far (the pruning that makes TP-Join cheap per run).
//!
//! [`tp_object_probe`] is the single-object version used when an update
//! arrives: it finds the updated object's current partners and its own
//! influence time in one traversal of the other tree.

use cij_geom::{MovingRect, Time, TimeInterval, INFINITE_TIME};
use cij_tpr::{Node, ObjectId, TprResult, TprTree};

use crate::counters::JoinCounters;

/// Tolerance for "same influence time": events produced by symmetric
/// arithmetic compare exactly, but transitive float drift merits slack.
const EVENT_TIE_EPS: f64 = 1e-9;

/// Result of one `TP-Join` run.
#[derive(Debug, Clone)]
pub struct TpAnswer {
    /// Pairs whose MBRs intersect at the query timestamp.
    pub current: Vec<(ObjectId, ObjectId)>,
    /// Earliest future time the result changes ([`INFINITE_TIME`] when it
    /// never does).
    pub expiry: Time,
    /// The object pair(s) whose intersection status flips at `expiry`.
    pub events: Vec<(ObjectId, ObjectId)>,
    /// Traversal work performed.
    pub counters: JoinCounters,
}

/// Runs `TP-Join` at timestamp `t_c` over two TPR-trees.
///
/// ```
/// use std::sync::Arc;
/// use cij_geom::{MovingRect, Rect};
/// use cij_join::tp_join;
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut ta = TprTree::new(pool.clone(), TreeConfig::default());
/// let mut tb = TprTree::new(pool, TreeConfig::default());
/// // A pair currently intersecting, and a pair meeting at t = 4.
/// ta.insert(ObjectId(1),
///     MovingRect::stationary(Rect::new([0.0, 0.0], [2.0, 2.0]), 0.0), 0.0)?;
/// tb.insert(ObjectId(11),
///     MovingRect::stationary(Rect::new([1.0, 1.0], [3.0, 3.0]), 0.0), 0.0)?;
/// ta.insert(ObjectId(2),
///     MovingRect::stationary(Rect::new([50.0, 0.0], [51.0, 1.0]), 0.0), 0.0)?;
/// tb.insert(ObjectId(12), MovingRect::rigid(
///     Rect::new([56.0, 0.0], [57.0, 1.0]), [-1.25, 0.0], 0.0), 0.0)?;
///
/// let ans = tp_join(&ta, &tb, 0.0)?;
/// assert_eq!(ans.current, vec![(ObjectId(1), ObjectId(11))]);
/// assert!((ans.expiry - 4.0).abs() < 1e-9, "next event: 2 meets 12");
/// assert_eq!(ans.events, vec![(ObjectId(2), ObjectId(12))]);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub fn tp_join(tree_a: &TprTree, tree_b: &TprTree, t_c: Time) -> TprResult<TpAnswer> {
    let mut state = TpState {
        current: Vec::new(),
        expiry: INFINITE_TIME,
        events: Vec::new(),
        counters: JoinCounters::new(),
    };
    if let (Some(ra), Some(rb)) = (tree_a.root_page(), tree_b.root_page()) {
        let na = tree_a.read_node_arc(ra)?;
        let nb = tree_b.read_node_arc(rb)?;
        visit(tree_a, &na, tree_b, &nb, t_c, &mut state)?;
    }
    Ok(TpAnswer {
        current: state.current,
        expiry: state.expiry,
        events: state.events,
        counters: state.counters,
    })
}

struct TpState {
    current: Vec<(ObjectId, ObjectId)>,
    expiry: Time,
    events: Vec<(ObjectId, ObjectId)>,
    counters: JoinCounters,
}

impl TpState {
    /// Records an object pair's influence time, keeping the earliest.
    fn offer_event(&mut self, pair: (ObjectId, ObjectId), t: Time) {
        if t == INFINITE_TIME {
            return;
        }
        if t < self.expiry - EVENT_TIE_EPS {
            self.expiry = t;
            self.events.clear();
            self.events.push(pair);
        } else if (t - self.expiry).abs() <= EVENT_TIE_EPS {
            self.events.push(pair);
        }
    }
}

/// First time ≥ `t_c` the two rectangles touch; `t_c` itself when they
/// already intersect, `∞` when they never do.
fn first_contact(a: &MovingRect, b: &MovingRect, t_c: Time) -> Time {
    match a.intersect_interval(b, t_c, INFINITE_TIME) {
        Some(TimeInterval { start, .. }) => start,
        None => INFINITE_TIME,
    }
}

fn visit(
    tree_a: &TprTree,
    na: &Node,
    tree_b: &TprTree,
    nb: &Node,
    t_c: Time,
    state: &mut TpState,
) -> TprResult<()> {
    state.counters.node_pairs += 1;

    // Height alignment.
    if na.level > nb.level {
        let Some(nb_mbr) = nb.bounding_mbr() else {
            return Ok(());
        };
        for ea in &na.entries {
            state.counters.entry_comparisons += 1;
            let descend = ea.mbr.intersects_at(&nb_mbr, t_c)
                || first_contact(&ea.mbr, &nb_mbr, t_c) <= state.expiry + EVENT_TIE_EPS;
            if descend {
                let child = tree_a.read_node_arc(ea.child.page())?;
                visit(tree_a, &child, tree_b, nb, t_c, state)?;
            }
        }
        return Ok(());
    }
    if nb.level > na.level {
        let Some(na_mbr) = na.bounding_mbr() else {
            return Ok(());
        };
        for eb in &nb.entries {
            state.counters.entry_comparisons += 1;
            let descend = eb.mbr.intersects_at(&na_mbr, t_c)
                || first_contact(&eb.mbr, &na_mbr, t_c) <= state.expiry + EVENT_TIE_EPS;
            if descend {
                let child = tree_b.read_node_arc(eb.child.page())?;
                visit(tree_a, na, tree_b, &child, t_c, state)?;
            }
        }
        return Ok(());
    }

    if na.is_leaf() {
        for ea in &na.entries {
            for eb in &nb.entries {
                state.counters.entry_comparisons += 1;
                let a = ea.child.object();
                let b = eb.child.object();
                if ea.mbr.intersects_at(&eb.mbr, t_c) {
                    state.counters.pairs_emitted += 1;
                    state.current.push((a, b));
                }
                let t_inf = ea.mbr.influence_time(&eb.mbr, t_c);
                state.offer_event((a, b), t_inf);
            }
        }
        return Ok(());
    }

    for ea in &na.entries {
        for eb in &nb.entries {
            state.counters.entry_comparisons += 1;
            // Condition (i): current pairs may live below.
            // Condition (ii): an event no later than the best candidate
            // may live below (first contact lower-bounds every descendant
            // pair's influence time).
            let descend = ea.mbr.intersects_at(&eb.mbr, t_c)
                || first_contact(&ea.mbr, &eb.mbr, t_c) <= state.expiry + EVENT_TIE_EPS;
            if descend {
                let ca = tree_a.read_node_arc(ea.child.page())?;
                let cb = tree_b.read_node_arc(eb.child.page())?;
                visit(tree_a, &ca, tree_b, &cb, t_c, state)?;
            }
        }
    }
    Ok(())
}

/// Best-first `TP-Join`: identical answer to [`tp_join`], different
/// traversal order.
///
/// The paper notes the traversal may be "depth-first (or best-first)".
/// Best-first expands node pairs in ascending first-contact time, so the
/// globally earliest events are found early and the influence-time bound
/// tightens as fast as possible — fewer node pairs expanded at the cost
/// of a priority queue. Currently-intersecting pairs sort at `t_c`
/// (they must always be expanded to enumerate the current result).
pub fn tp_join_best_first(tree_a: &TprTree, tree_b: &TprTree, t_c: Time) -> TprResult<TpAnswer> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// `f64` ordered for the heap; finite values only (∞ pairs are
    /// dropped before queueing).
    #[derive(PartialEq)]
    struct Key(f64);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("finite keys")
        }
    }

    let mut state = TpState {
        current: Vec::new(),
        expiry: INFINITE_TIME,
        events: Vec::new(),
        counters: JoinCounters::new(),
    };
    let (Some(ra), Some(rb)) = (tree_a.root_page(), tree_b.root_page()) else {
        return Ok(TpAnswer {
            current: state.current,
            expiry: state.expiry,
            events: state.events,
            counters: state.counters,
        });
    };

    // Heap of node pairs keyed by their first-contact time.
    let mut heap: BinaryHeap<Reverse<(Key, cij_storage::PageId, cij_storage::PageId)>> =
        BinaryHeap::new();
    heap.push(Reverse((Key(t_c), ra, rb)));

    while let Some(Reverse((Key(bound), pa, pb))) = heap.pop() {
        // A pair whose first contact is beyond the current expiry cannot
        // contain the next event, nor current pairs (contact > t_c).
        if bound > state.expiry + EVENT_TIE_EPS && bound > t_c {
            continue;
        }
        let na = tree_a.read_node_arc(pa)?;
        let nb = tree_b.read_node_arc(pb)?;
        state.counters.node_pairs += 1;

        // Height alignment: push the deeper side's children.
        if na.level != nb.level {
            let (deeper_tree, deeper, other_mbr, same_is_a) = if na.level > nb.level {
                (tree_a, &na, nb.bounding_mbr(), true)
            } else {
                (tree_b, &nb, na.bounding_mbr(), false)
            };
            let Some(other_mbr) = other_mbr else { continue };
            for e in &deeper.entries {
                state.counters.entry_comparisons += 1;
                let fc = first_contact(&e.mbr, &other_mbr, t_c);
                if fc.is_finite() {
                    let _ = deeper_tree;
                    let (qa, qb) = if same_is_a {
                        (e.child.page(), pb)
                    } else {
                        (pa, e.child.page())
                    };
                    heap.push(Reverse((Key(fc), qa, qb)));
                }
            }
            continue;
        }

        if na.is_leaf() {
            for ea in &na.entries {
                for eb in &nb.entries {
                    state.counters.entry_comparisons += 1;
                    let a = ea.child.object();
                    let b = eb.child.object();
                    if ea.mbr.intersects_at(&eb.mbr, t_c) {
                        state.counters.pairs_emitted += 1;
                        state.current.push((a, b));
                    }
                    state.offer_event((a, b), ea.mbr.influence_time(&eb.mbr, t_c));
                }
            }
            continue;
        }
        for ea in &na.entries {
            for eb in &nb.entries {
                state.counters.entry_comparisons += 1;
                let fc = first_contact(&ea.mbr, &eb.mbr, t_c);
                if fc.is_finite() && (fc <= state.expiry + EVENT_TIE_EPS || fc <= t_c) {
                    heap.push(Reverse((Key(fc), ea.child.page(), eb.child.page())));
                }
            }
        }
    }

    // Best-first expansion may visit leaves in any order; normalize the
    // current-pair order to the DFS convention for comparability.
    state.current.sort_unstable();
    Ok(TpAnswer {
        current: state.current,
        expiry: state.expiry,
        events: state.events,
        counters: state.counters,
    })
}

/// Single-object TP probe: the current partners of `target` in `tree`,
/// plus the earliest time `target`'s intersection status with *any*
/// object of the tree changes (and with whom).
///
/// Used by `ETP-Join` on every object update (§III: "an answer update is
/// also performed by traversing the tree to find the object's influence
/// time `T_INF(O)`").
pub struct TpProbe {
    /// Objects currently intersecting the target.
    pub current: Vec<ObjectId>,
    /// Earliest status-change time (`∞` when none).
    pub influence: Time,
    /// The partners whose status flips at `influence`.
    pub events: Vec<ObjectId>,
    /// Traversal work performed.
    pub counters: JoinCounters,
}

/// Runs the single-object TP probe. See [`TpProbe`].
pub fn tp_object_probe(tree: &TprTree, target: &MovingRect, t_c: Time) -> TprResult<TpProbe> {
    let mut probe = TpProbe {
        current: Vec::new(),
        influence: INFINITE_TIME,
        events: Vec::new(),
        counters: JoinCounters::new(),
    };
    let Some(root) = tree.root_page() else {
        return Ok(probe);
    };
    probe_visit(tree, root, target, t_c, &mut probe)?;
    Ok(probe)
}

fn probe_visit(
    tree: &TprTree,
    page: cij_storage::PageId,
    target: &MovingRect,
    t_c: Time,
    probe: &mut TpProbe,
) -> TprResult<()> {
    let node = tree.read_node_arc(page)?;
    probe.counters.node_pairs += 1;
    for e in &node.entries {
        probe.counters.entry_comparisons += 1;
        if node.is_leaf() {
            let oid = e.child.object();
            if e.mbr.intersects_at(target, t_c) {
                probe.current.push(oid);
            }
            let t_inf = e.mbr.influence_time(target, t_c);
            if t_inf == INFINITE_TIME {
                continue;
            }
            if t_inf < probe.influence - EVENT_TIE_EPS {
                probe.influence = t_inf;
                probe.events.clear();
                probe.events.push(oid);
            } else if (t_inf - probe.influence).abs() <= EVENT_TIE_EPS {
                probe.events.push(oid);
            }
        } else {
            let descend = e.mbr.intersects_at(target, t_c)
                || first_contact(&e.mbr, target, t_c) <= probe.influence + EVENT_TIE_EPS;
            if descend {
                probe_visit(tree, e.child.page(), target, t_c, probe)?;
            }
        }
    }
    Ok(())
}
