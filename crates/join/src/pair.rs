//! Join output: object pairs with their intersection interval.

use cij_geom::TimeInterval;
use cij_tpr::ObjectId;

/// One join result: objects `a ∈ A`, `b ∈ B` whose MBRs intersect during
/// `interval` (clipped to the processing window the join ran with).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Object from the left set.
    pub a: ObjectId,
    /// Object from the right set.
    pub b: ObjectId,
    /// When the two MBRs intersect, within the processing window.
    pub interval: TimeInterval,
}

impl JoinPair {
    /// Creates a pair.
    #[must_use]
    pub fn new(a: ObjectId, b: ObjectId, interval: TimeInterval) -> Self {
        Self { a, b, interval }
    }

    /// Sort key `(a, b, start)` for canonical ordering in tests.
    #[must_use]
    pub fn key(&self) -> (u64, u64, f64) {
        (self.a.0, self.b.0, self.interval.start)
    }
}

/// Sorts pairs canonically and asserts two pair lists are equal up to a
/// timestamp tolerance. Test helper shared by the oracle comparisons.
pub fn assert_pairs_equal(mut got: Vec<JoinPair>, mut expect: Vec<JoinPair>, tol: f64) {
    got.sort_by(|x, y| x.key().partial_cmp(&y.key()).expect("finite keys"));
    expect.sort_by(|x, y| x.key().partial_cmp(&y.key()).expect("finite keys"));
    assert_eq!(
        got.len(),
        expect.len(),
        "pair count mismatch: got {} expected {}\ngot: {got:?}\nexpected: {expect:?}",
        got.len(),
        expect.len()
    );
    for (g, e) in got.iter().zip(&expect) {
        assert_eq!((g.a, g.b), (e.a, e.b), "pair identity mismatch");
        assert!(
            (g.interval.start - e.interval.start).abs() <= tol,
            "start mismatch for ({}, {}): {} vs {}",
            g.a,
            g.b,
            g.interval.start,
            e.interval.start
        );
        let both_unbounded = g.interval.is_unbounded() && e.interval.is_unbounded();
        assert!(
            both_unbounded || (g.interval.end - e.interval.end).abs() <= tol,
            "end mismatch for ({}, {}): {} vs {}",
            g.a,
            g.b,
            g.interval.end,
            e.interval.end
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::TimeInterval;

    fn p(a: u64, b: u64, s: f64, e: f64) -> JoinPair {
        JoinPair::new(ObjectId(a), ObjectId(b), TimeInterval::new_unchecked(s, e))
    }

    #[test]
    fn equal_lists_pass() {
        assert_pairs_equal(
            vec![p(2, 1, 0.0, 5.0), p(1, 1, 0.0, 5.0)],
            vec![p(1, 1, 0.0, 5.0), p(2, 1, 0.0, 5.0)],
            1e-9,
        );
    }

    #[test]
    #[should_panic(expected = "pair count mismatch")]
    fn different_counts_fail() {
        assert_pairs_equal(vec![p(1, 1, 0.0, 5.0)], vec![], 1e-9);
    }

    #[test]
    #[should_panic(expected = "start mismatch")]
    fn interval_drift_fails() {
        assert_pairs_equal(vec![p(1, 1, 0.0, 5.0)], vec![p(1, 1, 1.0, 5.0)], 1e-9);
    }
}
