//! Brute-force oracle: `O(|A|·|B|)` evaluation of the intersection join.
//!
//! Every index-based algorithm in this crate is property-tested against
//! these functions; they are also the executable statement of the query
//! semantics (Definition 1 of the paper).

use cij_geom::{MovingRect, Time};
use cij_tpr::ObjectId;

use crate::pair::JoinPair;

/// All pairs `(a, b)` whose MBRs intersect at some instant in
/// `[t_s, t_e]`, with the intersection sub-interval.
#[must_use]
pub fn brute_join(
    set_a: &[(ObjectId, MovingRect)],
    set_b: &[(ObjectId, MovingRect)],
    t_s: Time,
    t_e: Time,
) -> Vec<JoinPair> {
    let mut out = Vec::new();
    for &(a, ref ma) in set_a {
        for &(b, ref mb) in set_b {
            if let Some(iv) = ma.intersect_interval(mb, t_s, t_e) {
                out.push(JoinPair::new(a, b, iv));
            }
        }
    }
    out
}

/// All pairs intersecting at the single instant `t` (the per-timestamp
/// answer a continuous join must report).
#[must_use]
pub fn brute_pairs_at(
    set_a: &[(ObjectId, MovingRect)],
    set_b: &[(ObjectId, MovingRect)],
    t: Time,
) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    for &(a, ref ma) in set_a {
        let ra = ma.at(t);
        for &(b, ref mb) in set_b {
            if ra.intersects(&mb.at(t)) {
                out.push((a, b));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;

    fn obj(id: u64, x: f64, vx: f64) -> (ObjectId, MovingRect) {
        (
            ObjectId(id),
            MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [vx, 0.0], 0.0),
        )
    }

    #[test]
    fn join_and_instant_agree() {
        let a = vec![obj(1, 0.0, 1.0), obj(2, 50.0, 0.0)];
        let b = vec![obj(10, 5.0, 0.0), obj(11, 50.5, 0.0)];
        let pairs = brute_join(&a, &b, 0.0, 100.0);
        // 1 catches 10 at t=4 and 11 at t=49.5; 2 overlaps 11 now.
        assert_eq!(pairs.len(), 3);
        let now = brute_pairs_at(&a, &b, 0.0);
        assert_eq!(now, vec![(ObjectId(2), ObjectId(11))]);
        let later = brute_pairs_at(&a, &b, 4.5);
        assert!(later.contains(&(ObjectId(1), ObjectId(10))));
    }

    #[test]
    fn empty_sets() {
        assert!(brute_join(&[], &[], 0.0, 10.0).is_empty());
        assert!(brute_pairs_at(&[obj(1, 0.0, 0.0)], &[], 0.0).is_empty());
    }
}
