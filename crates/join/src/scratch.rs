//! Reusable per-traversal scratch buffers for the join kernels.
//!
//! The improved kernel visits one node pair per recursion step and needs
//! several short-lived buffers at each depth: the IC-filtered entry index
//! lists, the two plane-sweep arrays, and the candidate staging vector.
//! Allocating them per visit (the seed behaviour) puts `malloc`/`free` on
//! the hottest loop of the system; [`JoinScratch`] instead keeps one
//! [`Frame`] of buffers per recursion depth and hands them out with
//! [`std::mem::take`], so a warm traversal allocates nothing.

use crate::sweep::SweepSoa;
use cij_geom::TimeInterval;
use cij_tpr::EntryLanes;

/// One recursion depth's worth of buffers. All vectors are cleared, not
/// shrunk, between visits.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    /// IC-surviving entry positions in node `a` (indices into
    /// `node.entries`).
    pub sa: Vec<u32>,
    /// IC-surviving entry positions in node `b`.
    pub sb: Vec<u32>,
    /// Plane-sweep state for side `a`.
    pub sweep_a: SweepSoa,
    /// Plane-sweep state for side `b`.
    pub sweep_b: SweepSoa,
    /// Candidate pairs `(pos in sa, pos in sb, overlap interval)`.
    pub cands: Vec<(u32, u32, TimeInterval)>,
    /// Leaf lanes for side `a` (zero-copy leaf fast path).
    pub lanes_a: EntryLanes,
    /// Leaf lanes for side `b`.
    pub lanes_b: EntryLanes,
}

/// Depth-indexed pool of buffer frames threaded through a join
/// traversal.
///
/// Create one per worker (or one per call site for sequential joins) and
/// reuse it across calls: the second and subsequent traversals run
/// allocation-free. A frame is *moved out* for the duration of a visit
/// (`mem::take`), so the recursion can borrow the scratch mutably for the
/// next depth without aliasing.
#[derive(Debug, Default)]
pub struct JoinScratch {
    frames: Vec<Frame>,
}

impl JoinScratch {
    /// An empty scratch pool; buffers grow on first use and are retained
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the frame for `depth` out of the pool (growing the pool the
    /// first time a depth is reached). Pair with [`Self::put_frame`].
    pub(crate) fn take_frame(&mut self, depth: usize) -> Frame {
        if self.frames.len() <= depth {
            self.frames.resize_with(depth + 1, Frame::default);
        }
        std::mem::take(&mut self.frames[depth])
    }

    /// Returns a frame taken with [`Self::take_frame`], preserving its
    /// grown capacity for the next visit at this depth.
    pub(crate) fn put_frame(&mut self, depth: usize, frame: Frame) {
        self.frames[depth] = frame;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_retain_capacity_across_take_put() {
        let mut s = JoinScratch::new();
        let mut f = s.take_frame(3);
        f.sa.reserve(128);
        let cap = f.sa.capacity();
        assert!(cap >= 128);
        s.put_frame(3, f);
        let f = s.take_frame(3);
        assert_eq!(f.sa.capacity(), cap);
        assert_eq!(f.sa.len(), 0);
    }
}
