//! Chunked candidate-refinement kernel for the SoA plane sweep
//! (`simd` cargo feature only — the default build uses the fused scalar
//! loop inside [`ps_intersection_soa`](crate::ps_intersection_soa)).
//!
//! Under `simd`, each sweep step reduces to *"refine candidate `c`
//! against the contiguous run `[from, to)` of the other side's
//! rectangles"*, processed in 4-rectangle windows. Each of the four
//! per-dimension linear constraints is applied as a branch-free select
//! (`min`/`max` against a `±∞` sentinel), exactly mirroring
//! `solve_linear_leq` + `TimeInterval::intersect`: `start` only ever
//! grows, `end` only ever shrinks, and `f64::max` / `f64::min` never
//! propagate `NaN`, so the fold order produces bit-identical
//! `start`/`end` values to the sequential reference. Liveness (`alive`)
//! tracks constraint feasibility — `c1 == 0` with a positive offset, or
//! a `NaN` root — which is precisely the set of cases where the
//! reference returns `None`. Emission happens in a scalar pass over each
//! chunk in lane order, so pair order is identical too.
//!
//! The differential suites (`soa_matches_aos_output_and_order`, the
//! engine `cache_differential` tests, the CI `--features simd` matrix
//! leg) pin the two flavours to bit-identical pairs, intervals, and
//! counter totals.

use cij_geom::{MovingRect, Time, TimeInterval};

use crate::sweep::SweepSoa;

/// Chunk width of the vector kernel.
const W: usize = 4;

/// Refines candidate `c` against run `[from, to)` of `run`'s (lb-sorted)
/// rectangles, appending surviving pairs in run order. `swap` emits
/// `(run_idx, c_idx)` instead of `(c_idx, run_idx)` — the candidate came
/// from side `b`.
#[inline]
#[allow(clippy::too_many_arguments)] // hot inner loop, all state live
pub(crate) fn refine_run(
    c: &MovingRect,
    c_idx: u32,
    run: &SweepSoa,
    from: usize,
    to: usize,
    t_s: Time,
    t_e: Time,
    swap: bool,
    out: &mut Vec<(u32, u32, TimeInterval)>,
) {
    // Candidate constants hoisted out of the lane loop: each bound's
    // offset at t = 0, matching the reference's
    // `lo − vlo·t_ref` / `hi − vhi·t_ref` grouping exactly.
    let ca_lo = [c.lo[0] - c.vlo[0] * c.t_ref, c.lo[1] - c.vlo[1] * c.t_ref];
    let ca_hi = [c.hi[0] - c.vhi[0] * c.t_ref, c.hi[1] - c.vhi[1] * c.t_ref];

    let mut k = from;
    while k + W <= to {
        let chunk: &[MovingRect] = &run.mbrs[k..k + W];
        let mut start = [t_s; W];
        let mut end = [t_e; W];
        let mut alive = [t_s <= t_e; W];
        for d in 0..2 {
            for l in 0..W {
                let b = &chunk[l];
                // c.lo_d(t) <= other.hi_d(t): note the constraint set per
                // dimension is symmetric in (c, other), so the math is
                // independent of `swap` — only emission order is not.
                let c0 = ca_lo[d] - (b.hi[d] - b.vhi[d] * b.t_ref);
                let c1 = c.vlo[d] - b.vhi[d];
                let root = -c0 / c1;
                let upper = if c1 > 0.0 { root } else { f64::INFINITY };
                let lower = if c1 < 0.0 { root } else { f64::NEG_INFINITY };
                start[l] = start[l].max(lower);
                end[l] = end[l].min(upper);
                alive[l] &= if c1 == 0.0 { c0 <= 0.0 } else { !root.is_nan() };

                // other.lo_d(t) <= c.hi_d(t)
                let c0 = (b.lo[d] - b.vlo[d] * b.t_ref) - ca_hi[d];
                let c1 = b.vlo[d] - c.vhi[d];
                let root = -c0 / c1;
                let upper = if c1 > 0.0 { root } else { f64::INFINITY };
                let lower = if c1 < 0.0 { root } else { f64::NEG_INFINITY };
                start[l] = start[l].max(lower);
                end[l] = end[l].min(upper);
                alive[l] &= if c1 == 0.0 { c0 <= 0.0 } else { !root.is_nan() };
            }
        }
        for l in 0..W {
            if alive[l] && start[l] <= end[l] {
                let iv = TimeInterval::new_unchecked(start[l], end[l]);
                out.push(if swap {
                    (run.idx(k + l), c_idx, iv)
                } else {
                    (c_idx, run.idx(k + l), iv)
                });
            }
        }
        k += W;
    }

    // Remainder: reference semantics, identical to the default fused
    // scalar loop.
    for kk in k..to {
        let other = run.mbr(kk);
        let iv = if swap {
            other.intersect_interval(c, t_s, t_e)
        } else {
            c.intersect_interval(other, t_s, t_e)
        };
        if let Some(iv) = iv {
            out.push(if swap {
                (run.idx(kk), c_idx, iv)
            } else {
                (c_idx, run.idx(kk), iv)
            });
        }
    }
}
