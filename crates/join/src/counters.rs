//! CPU-side work counters, complementing the storage layer's I/O stats.

/// Counts the comparison work a join performs. I/O is tracked by the
/// buffer pool; these counters expose the CPU-side picture the paper's
/// "total response time" metric reflects (entry comparisons dominate it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinCounters {
    /// Node pairs visited by the synchronous traversal.
    pub node_pairs: u64,
    /// Entry-pair intersection tests evaluated.
    pub entry_comparisons: u64,
    /// Entries pruned by the intersection-check filter before any
    /// pairwise comparison.
    pub ic_pruned: u64,
    /// Output pairs produced.
    pub pairs_emitted: u64,
}

impl JoinCounters {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            node_pairs: self.node_pairs + other.node_pairs,
            entry_comparisons: self.entry_comparisons + other.entry_comparisons,
            ic_pruned: self.ic_pruned + other.ic_pruned,
            pairs_emitted: self.pairs_emitted + other.pairs_emitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_fields() {
        let a = JoinCounters {
            node_pairs: 1,
            entry_comparisons: 2,
            ic_pruned: 3,
            pairs_emitted: 4,
        };
        let b = JoinCounters {
            node_pairs: 10,
            entry_comparisons: 20,
            ic_pruned: 30,
            pairs_emitted: 40,
        };
        let m = a.merged(b);
        assert_eq!(m.node_pairs, 11);
        assert_eq!(m.entry_comparisons, 22);
        assert_eq!(m.ic_pruned, 33);
        assert_eq!(m.pairs_emitted, 44);
    }
}
