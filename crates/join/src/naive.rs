//! `NaiveJoin` (paper §II-C, Fig. 2) and its time-constrained variant
//! `TC-Join` (§IV-B).
//!
//! A synchronous top-down traversal of two TPR-trees: a node pair is
//! descended iff the entries' moving MBRs intersect within the processing
//! window. `NaiveJoin` runs with the window `[t_c, ∞)` — which is exactly
//! why it is slow: unless velocities are highly skewed every node MBR
//! eventually overlaps almost every other, so whole trees get compared.
//! `TC-Join` is the same algorithm with the window capped at
//! `t_u + T_M` (Theorem 1), obtained by literally "changing
//! `intersect(e_A, e_B, t_c, ∞)` to `intersect(e_A, e_B, t_c, t_u + T_M)`".

use std::sync::Arc;

use cij_geom::{Time, INFINITE_TIME};
use cij_tpr::{Node, TprResult, TprTree};

use crate::counters::JoinCounters;
use crate::pair::JoinPair;
use crate::parallel::{SpillSink, NO_SPILL_BUDGET};

/// `NaiveJoin`: every join pair from `t_c` to the infinite timestamp.
pub fn naive_join(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_c: Time,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    join_window(tree_a, tree_b, t_c, INFINITE_TIME)
}

/// `TC-Join`: every join pair within `[t_s, t_e]` (callers pass
/// `t_e = t_u + T_M`, or the tighter per-bucket bound of MTB-Join).
///
/// ```
/// use std::sync::Arc;
/// use cij_geom::{MovingRect, Rect};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut police = TprTree::new(pool.clone(), TreeConfig::default());
/// let mut towns = TprTree::new(pool, TreeConfig::default());
///
/// // A patrol car sweeping right; a community it will reach at t = 49.
/// police.insert(
///     ObjectId(1),
///     MovingRect::rigid(Rect::new([0.0, 0.0], [2.0, 2.0]), [1.0, 0.0], 0.0),
///     0.0,
/// )?;
/// towns.insert(
///     ObjectId(100),
///     MovingRect::stationary(Rect::new([51.0, 0.0], [60.0, 9.0]), 0.0),
///     0.0,
/// )?;
///
/// // Within one maximum update interval (T_M = 60) the pair is found…
/// let (pairs, _) = cij_join::tc_join(&police, &towns, 0.0, 60.0)?;
/// assert_eq!(pairs.len(), 1);
/// assert!((pairs[0].interval.start - 49.0).abs() < 1e-9);
///
/// // …while a shorter window correctly excludes it.
/// let (pairs, _) = cij_join::tc_join(&police, &towns, 0.0, 40.0)?;
/// assert!(pairs.is_empty());
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub fn tc_join(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_s: Time,
    t_e: Time,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    join_window(tree_a, tree_b, t_s, t_e)
}

fn join_window(
    tree_a: &TprTree,
    tree_b: &TprTree,
    t_s: Time,
    t_e: Time,
) -> TprResult<(Vec<JoinPair>, JoinCounters)> {
    let mut out = Vec::new();
    let mut counters = JoinCounters::new();
    let (Some(root_a), Some(root_b)) = (tree_a.root_page(), tree_b.root_page()) else {
        return Ok((out, counters));
    };
    let na = tree_a.read_node_arc(root_a)?;
    let nb = tree_b.read_node_arc(root_b)?;
    // `Vec::new()` does not allocate; with an unlimited budget nothing is
    // ever pushed, so no spill buffer is materialized.
    let mut spill = SpillSink::new();
    join_nodes(
        tree_a,
        &na,
        tree_b,
        &nb,
        t_s,
        t_e,
        &mut out,
        &mut counters,
        NO_SPILL_BUDGET,
        &mut spill,
    )?;
    debug_assert!(spill.is_empty(), "unlimited budget never spills");
    Ok((out, counters))
}

/// Recursive synchronous traversal. Handles trees of different heights by
/// descending only the deeper node until levels align.
///
/// `budget` / `spill` serve the parallel layer: every recursive descent
/// costs one unit of budget, and once it is exhausted the would-be
/// recursive call — its nodes already read, so I/O accounting is
/// unchanged — is pushed onto `spill` instead of executed. Sequential
/// entry points pass [`NO_SPILL_BUDGET`], which is never exhausted.
#[allow(clippy::too_many_arguments)] // recursive kernel, all state is hot
pub(crate) fn join_nodes(
    tree_a: &TprTree,
    na: &Arc<Node>,
    tree_b: &TprTree,
    nb: &Arc<Node>,
    t_s: Time,
    t_e: Time,
    out: &mut Vec<JoinPair>,
    counters: &mut JoinCounters,
    budget: usize,
    spill: &mut SpillSink,
) -> TprResult<()> {
    counters.node_pairs += 1;

    if na.level > nb.level {
        // Align levels: descend A's qualifying children against B whole.
        let nb_mbr = match nb.bounding_mbr() {
            Some(m) => m,
            None => return Ok(()),
        };
        for ea in &na.entries {
            counters.entry_comparisons += 1;
            if ea.mbr.intersect_interval(&nb_mbr, t_s, t_e).is_some() {
                let child = tree_a.read_node_arc(ea.child.page())?;
                if budget == 0 {
                    spill.push((child, Arc::clone(nb), t_s, t_e));
                } else {
                    join_nodes(
                        tree_a,
                        &child,
                        tree_b,
                        nb,
                        t_s,
                        t_e,
                        out,
                        counters,
                        budget - 1,
                        spill,
                    )?;
                }
            }
        }
        return Ok(());
    }
    if nb.level > na.level {
        let na_mbr = match na.bounding_mbr() {
            Some(m) => m,
            None => return Ok(()),
        };
        for eb in &nb.entries {
            counters.entry_comparisons += 1;
            if eb.mbr.intersect_interval(&na_mbr, t_s, t_e).is_some() {
                let child = tree_b.read_node_arc(eb.child.page())?;
                if budget == 0 {
                    spill.push((Arc::clone(na), child, t_s, t_e));
                } else {
                    join_nodes(
                        tree_a,
                        na,
                        tree_b,
                        &child,
                        t_s,
                        t_e,
                        out,
                        counters,
                        budget - 1,
                        spill,
                    )?;
                }
            }
        }
        return Ok(());
    }

    // Equal levels: the paper's Fig. 2 double loop.
    if na.is_leaf() {
        for ea in &na.entries {
            for eb in &nb.entries {
                counters.entry_comparisons += 1;
                if let Some(iv) = ea.mbr.intersect_interval(&eb.mbr, t_s, t_e) {
                    counters.pairs_emitted += 1;
                    out.push(JoinPair::new(ea.child.object(), eb.child.object(), iv));
                }
            }
        }
        return Ok(());
    }
    for ea in &na.entries {
        for eb in &nb.entries {
            counters.entry_comparisons += 1;
            if ea.mbr.intersect_interval(&eb.mbr, t_s, t_e).is_some() {
                let ca = tree_a.read_node_arc(ea.child.page())?;
                let cb = tree_b.read_node_arc(eb.child.page())?;
                // Faithful to Fig. 2: the recursion keeps the original
                // window (the clipped-interval refinement is part of the
                // §IV-D intersection check, not of NaiveJoin).
                if budget == 0 {
                    spill.push((ca, cb, t_s, t_e));
                } else {
                    join_nodes(
                        tree_a,
                        &ca,
                        tree_b,
                        &cb,
                        t_s,
                        t_e,
                        out,
                        counters,
                        budget - 1,
                        spill,
                    )?;
                }
            }
        }
    }
    Ok(())
}
