//! # cij-shard — partitioned multi-engine coordination
//!
//! The repo's engines each index *all* objects in one TPR-tree pair, so
//! a handful of fast movers forces aggressive MBR expansion on every
//! probe and one engine owns the whole update stream. This crate splits
//! each object set across `K` shards under a pluggable
//! [`PartitionPolicy`] — velocity-magnitude bands (arXiv:1205.6697),
//! spatial strips, or a neutral id hash — runs one full
//! [`ContinuousJoinEngine`](cij_core::ContinuousJoinEngine) per
//! joinable shard pair, and hides the whole arrangement behind the
//! single-engine trait: [`ShardCoordinator`] slots into
//! `run_simulation`, the `cij-stream` service, and the bench harness
//! unchanged.
//!
//! The coordinator routes updates through a [`ShardRouter`] that owns
//! object → shard placement; a trajectory update that crosses a
//! partition boundary becomes a migration (delete from the old shard's
//! engines, insert into the new one's) inside a single logical update.
//! Independent shard-pair engines execute in parallel via the same
//! deterministic fan-out discipline as the PR-1 join worklist
//! ([`cij_join::fan_out_tasks`]), and the merged answer is pinned
//! bit-identical to the single-engine oracle by the differential suite
//! in `tests/differential.rs`.
//!
//! Partitions need not stay fixed: a coordinator built
//! [`with_factory`](ShardCoordinator::with_factory) can
//! [`rebalance_to`](ShardCoordinator::rebalance_to) a new policy while
//! the join runs (boundary shift, shard split, shard merge), and
//! [`enable_adaptive`](ShardCoordinator::enable_adaptive) arms an
//! [`AdaptiveController`] that derives equal-weight boundaries from a
//! streaming quantile sketch of the observed trajectories and triggers
//! those rebalances when the population imbalance crosses a threshold —
//! the differential suite pins the merged answer across re-partition
//! events too.
//!
//! ```
//! use std::sync::Arc;
//! use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
//! use cij_shard::{ShardCoordinator, VelocityBandPolicy};
//! use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
//! use cij_workload::{generate_pair, Params};
//!
//! let params = Params { dataset_size: 200, ..Params::default() };
//! let (set_a, set_b) = generate_pair(&params, 0.0);
//! let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
//! let policy = Arc::new(VelocityBandPolicy::new(4, params.max_speed));
//! let mut coordinator = ShardCoordinator::new(
//!     pool,
//!     EngineConfig::default(),
//!     policy,
//!     &set_a,
//!     &set_b,
//!     0.0,
//!     &|pool, config, a, b, now| {
//!         Ok(Box::new(MtbEngine::new(pool, *config, a, b, now)?))
//!     },
//! )
//! .unwrap();
//! coordinator.run_initial_join(0.0).unwrap();
//! assert_eq!(coordinator.engine_count(), 16); // 4×4 shard pairs
//! let _pairs = coordinator.result_at(0.0);
//! ```

#![deny(missing_docs)]

pub mod adaptive;
pub mod coordinator;
pub mod policy;
pub mod report;
pub mod router;

pub use adaptive::{AdaptiveAxis, AdaptiveConfig, AdaptiveController};
pub use coordinator::{ShardCoordinator, ShardEngineFactory, SharedShardEngineFactory};
pub use policy::{
    worst_corner_speed, HashPolicy, PartitionPolicy, SpatialBoundsPolicy, SpatialGridPolicy,
    VelocityBandPolicy, VelocityBoundsPolicy,
};
pub use report::{PairReport, ShardReport};
pub use router::{ObjectRecord, RebalanceMove, RouteDecision, ShardRouter};
