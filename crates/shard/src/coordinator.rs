//! The shard coordinator: K×K (or fewer) shard-pair engines behind the
//! single-engine protocol.
//!
//! # Topology
//!
//! A [`PartitionPolicy`] splits each object set into `K` shards. For
//! every *joinable* shard pair `(i, j)` the coordinator builds one full
//! [`ContinuousJoinEngine`] over (A-shard `i`, B-shard `j`) — so an
//! A-object of shard `i` is indexed by every engine in row `i`, and a
//! B-object of shard `j` by every engine in column `j`. Each engine owns
//! its indexes outright; engines share only the buffer pool (one
//! simulated disk, like the paper's testbed) and are otherwise disjoint,
//! which is what makes the parallel fan-out deterministic.
//!
//! # Why per-pair results union to the single-engine answer
//!
//! Every (a, b) with `a` in shard `i`, `b` in shard `j` is watched by
//! exactly one engine — `(i, j)` — and by none after a migration removes
//! either object from that engine's row/column. The per-pair predicted
//! intersection intervals depend only on the two trajectories and the
//! probe window, not on tree shape, and the probe windows are the
//! single-engine ones: the MTB buckets live on a *global* time grid
//! (`bucket_of(t) = ⌊t / bucket_len⌋`), so a shard's buckets are a
//! subset of the unsharded engine's buckets with identical `t_eb`s, and
//! Theorem 2's per-bucket window `min(t_eb, now) + T_M` evaluates
//! identically per shard — the per-shard generalization of the paper's
//! argument. Hence `⋃ result_at` over the plan, deduplicated, equals the
//! single engine's `result_at` — the property the differential harness
//! pins across policies × K × threads.
//!
//! # Updates, migration, batches
//!
//! A same-shard update is applied (as a plain `apply_update`) to every
//! engine of the object's row/column. A partition-crossing update
//! becomes `remove_object` from the old row/column plus `insert_object`
//! into the new one — one logical update, exact mirror halves of
//! `apply_update`. [`apply_batch`](ContinuousJoinEngine::apply_batch)
//! projects the tick's update sequence onto each engine (preserving
//! order) and fans the per-engine op lists out over
//! [`cij_join::fan_out_tasks`] — engines are state-disjoint, so the
//! projection is exactly what each engine would have seen sequentially.

use std::collections::HashMap;
use std::sync::Arc;

use cij_core::{publish_engine_totals, ContinuousJoinEngine, EngineConfig, PairKey, PairStatus};
use cij_geom::{MovingRect, Time};
use cij_join::{fan_out_tasks, JoinCounters};
use cij_obs::MetricsRegistry;
use cij_storage::{BufferPool, CacheSnapshot};
use cij_tpr::{ObjectId, TprError, TprResult};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};
use parking_lot::Mutex;

use crate::policy::PartitionPolicy;
use crate::report::{PairReport, ShardReport};
use crate::router::{RouteDecision, ShardRouter};

/// Builds one shard-pair engine over the given subsets. The coordinator
/// passes a clone of its shared pool and a `threads = 1` configuration
/// (parallelism lives across engines, not inside them).
pub type ShardEngineFactory<'a> = dyn Fn(
        BufferPool,
        &EngineConfig,
        &[MovingObject],
        &[MovingObject],
        Time,
    ) -> TprResult<Box<dyn ContinuousJoinEngine + Send>>
    + 'a;

/// One operation projected onto a shard-pair engine.
#[derive(Debug, Clone, Copy)]
enum Op {
    Apply(ObjectUpdate),
    Insert {
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
    },
    Remove {
        set: SetTag,
        id: ObjectId,
        old_mbr: MovingRect,
        last_update: Time,
    },
}

struct PairSlot {
    shard_a: usize,
    shard_b: usize,
    engine: Mutex<Box<dyn ContinuousJoinEngine + Send>>,
}

/// A `ContinuousJoinEngine` made of shard-pair engines (see the module
/// docs). Drop-in wherever a single engine runs: `run_simulation`, the
/// stream service's engine factory, the bench harness.
pub struct ShardCoordinator {
    policy: Arc<dyn PartitionPolicy>,
    pool: BufferPool,
    threads: usize,
    slots: Vec<PairSlot>,
    /// (shard_a, shard_b) → index into `slots` for joinable pairs.
    slot_of: HashMap<(usize, usize), usize>,
    /// Slot indices of row i (A-shard i) / column j (B-shard j).
    rows: Vec<Vec<usize>>,
    cols: Vec<Vec<usize>>,
    router: ShardRouter,
    population_a: Vec<usize>,
    population_b: Vec<usize>,
    /// The coordinator's registry (disabled unless `config.metrics`).
    /// Inner engines run with metrics off — the coordinator owns the
    /// sharded run's telemetry, publishing per-slot counters itself.
    obs: MetricsRegistry,
}

impl ShardCoordinator {
    /// Partitions both sets under `policy`, builds one engine per
    /// joinable shard pair via `factory` (each on a clone of `pool`),
    /// and readies the router. `config.threads` sets the coordinator's
    /// fan-out width; inner engines always run their own traversals
    /// sequentially.
    pub fn new(
        pool: BufferPool,
        config: EngineConfig,
        policy: Arc<dyn PartitionPolicy>,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
        factory: &ShardEngineFactory<'_>,
    ) -> TprResult<Self> {
        let k = policy.shard_count();
        let mut router = ShardRouter::new(policy.clone());
        let mut parts_a: Vec<Vec<MovingObject>> = vec![Vec::new(); k];
        let mut parts_b: Vec<Vec<MovingObject>> = vec![Vec::new(); k];
        for o in set_a {
            parts_a[router.place(o.id, &o.mbr)].push(*o);
        }
        for o in set_b {
            parts_b[router.place(o.id, &o.mbr)].push(*o);
        }

        let obs = MetricsRegistry::enabled_if(config.metrics);
        pool.stats().register_in(&obs, "storage.pool");

        let inner = EngineConfig {
            threads: 1,
            // One registry per sharded run: inner engines stay silent and
            // the coordinator publishes their counters under per-pair
            // names (see `publish_metrics`).
            metrics: false,
            ..config
        };
        let mut slots = Vec::new();
        let mut slot_of = HashMap::new();
        let mut rows = vec![Vec::new(); k];
        let mut cols = vec![Vec::new(); k];
        for i in 0..k {
            for j in 0..k {
                if !policy.joinable(i, j) {
                    continue;
                }
                let engine = factory(pool.clone(), &inner, &parts_a[i], &parts_b[j], now)?;
                let idx = slots.len();
                slots.push(PairSlot {
                    shard_a: i,
                    shard_b: j,
                    engine: Mutex::new(engine),
                });
                slot_of.insert((i, j), idx);
                rows[i].push(idx);
                cols[j].push(idx);
            }
        }

        Ok(Self {
            policy,
            pool,
            threads: config.threads.max(1),
            slots,
            slot_of,
            rows,
            cols,
            router,
            population_a: parts_a.iter().map(Vec::len).collect(),
            population_b: parts_b.iter().map(Vec::len).collect(),
            obs,
        })
    }

    /// Shards per object set.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.policy.shard_count()
    }

    /// Shard-pair engines in the join plan.
    #[must_use]
    pub fn engine_count(&self) -> usize {
        self.slots.len()
    }

    /// Cross-shard migrations routed so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.router.migrations()
    }

    /// The shard currently holding `id`.
    #[must_use]
    pub fn shard_of(&self, id: ObjectId) -> Option<usize> {
        self.router.shard_of(id)
    }

    /// Aggregated diagnostics: per-pair counters and cache activity,
    /// shard populations, migrations, and the shared pool's I/O. When
    /// metrics are enabled the report also carries a published
    /// [`MetricsSnapshot`](cij_obs::MetricsSnapshot) of the
    /// coordinator's registry.
    #[must_use]
    pub fn report(&self) -> ShardReport {
        let metrics = self.obs.is_enabled().then(|| {
            self.publish_metrics();
            self.obs.snapshot()
        });
        ShardReport {
            policy: self.policy.name(),
            k: self.policy.shard_count(),
            threads: self.threads,
            migrations: self.router.migrations(),
            population_a: self.population_a.clone(),
            population_b: self.population_b.clone(),
            pairs: self
                .slots
                .iter()
                .map(|s| {
                    let engine = s.engine.lock();
                    PairReport {
                        shard_a: s.shard_a,
                        shard_b: s.shard_b,
                        counters: engine.counters(),
                        cache: engine.node_cache_snapshot(),
                    }
                })
                .collect(),
            io: self.pool.stats().snapshot(),
            metrics,
        }
    }

    /// The slot indices an update of (`set`, shard) must reach: the
    /// whole row for A-objects, the whole column for B-objects.
    fn fan(&self, set: SetTag, shard: usize) -> &[usize] {
        match set {
            SetTag::A => &self.rows[shard],
            SetTag::B => &self.cols[shard],
        }
    }

    /// Projects one update onto per-slot operations, updating the
    /// router's placement as a side effect.
    fn route_ops(&mut self, update: &ObjectUpdate, ops: &mut [Vec<Op>]) {
        match self.router.route(update.id, &update.new_mbr) {
            RouteDecision::Stay(shard) => {
                for &slot in self.fan(update.set, shard) {
                    ops[slot].push(Op::Apply(*update));
                }
            }
            RouteDecision::Migrate { from, to } => {
                for &slot in self.fan(update.set, from) {
                    ops[slot].push(Op::Remove {
                        set: update.set,
                        id: update.id,
                        old_mbr: update.old_mbr,
                        last_update: update.last_update,
                    });
                }
                for &slot in self.fan(update.set, to) {
                    ops[slot].push(Op::Insert {
                        set: update.set,
                        id: update.id,
                        mbr: update.new_mbr,
                    });
                }
                match update.set {
                    SetTag::A => {
                        self.population_a[from] -= 1;
                        self.population_a[to] += 1;
                    }
                    SetTag::B => {
                        self.population_b[from] -= 1;
                        self.population_b[to] += 1;
                    }
                }
            }
        }
    }

    /// Executes per-slot op lists: fans slots with work out over the
    /// coordinator's threads, surfaces the first error in slot order.
    fn execute_ops(&self, ops: &[Vec<Op>], now: Time) -> TprResult<()> {
        let results = fan_out_tasks(self.slots.len(), self.threads, |i| {
            let slot_ops = &ops[i];
            if slot_ops.is_empty() {
                return Ok(());
            }
            let mut engine = self.slots[i].engine.lock();
            for op in slot_ops {
                match *op {
                    Op::Apply(ref u) => engine.apply_update(u, now)?,
                    Op::Insert { set, id, mbr } => engine.insert_object(set, id, mbr, now)?,
                    Op::Remove {
                        set,
                        id,
                        ref old_mbr,
                        last_update,
                    } => engine.remove_object(set, id, old_mbr, last_update, now)?,
                }
            }
            Ok(())
        });
        results.into_iter().collect()
    }

    /// Runs `f` against every engine in parallel, surfacing the first
    /// error in slot order.
    fn for_each_engine(
        &self,
        f: impl Fn(&mut (dyn ContinuousJoinEngine + Send)) -> TprResult<()> + Sync,
    ) -> TprResult<()> {
        let results = fan_out_tasks(self.slots.len(), self.threads, |i| {
            f(&mut **self.slots[i].engine.lock())
        });
        results.into_iter().collect()
    }
}

impl ContinuousJoinEngine for ShardCoordinator {
    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        self.for_each_engine(|e| e.run_initial_join(now))
    }

    fn advance_time(&mut self, now: Time) -> TprResult<()> {
        self.for_each_engine(|e| e.advance_time(now))
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        self.apply_batch(std::slice::from_ref(update), now)
    }

    fn apply_batch(&mut self, updates: &[ObjectUpdate], now: Time) -> TprResult<()> {
        if updates.is_empty() {
            return Ok(());
        }
        let mut ops: Vec<Vec<Op>> = vec![Vec::new(); self.slots.len()];
        for u in updates {
            self.route_ops(u, &mut ops);
        }
        self.execute_ops(&ops, now)
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        let shard = self.router.place(id, &mbr);
        match set {
            SetTag::A => self.population_a[shard] += 1,
            SetTag::B => self.population_b[shard] += 1,
        }
        for &slot in self.fan(set, shard) {
            self.slots[slot]
                .engine
                .lock()
                .insert_object(set, id, mbr, now)?;
        }
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        last_update: Time,
        now: Time,
    ) -> TprResult<()> {
        let Some(shard) = self.router.remove(id) else {
            return Err(TprError::ObjectNotFound(id));
        };
        match set {
            SetTag::A => self.population_a[shard] -= 1,
            SetTag::B => self.population_b[shard] -= 1,
        }
        for &slot in self.fan(set, shard) {
            self.slots[slot]
                .engine
                .lock()
                .remove_object(set, id, old_mbr, last_update, now)?;
        }
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        for slot in &self.slots {
            slot.engine.lock().gc(now);
        }
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend(slot.engine.lock().result_at(t));
        }
        // Each pair lives in exactly one engine, so the dedup is a
        // no-op in correct runs — kept so the merged answer is
        // canonical by construction.
        out.sort_unstable();
        out.dedup();
        out
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.slots.iter().fold(JoinCounters::new(), |acc, s| {
            acc.merged(s.engine.lock().counters())
        })
    }

    fn enable_delta_tracking(&mut self) {
        for slot in &self.slots {
            slot.engine.lock().enable_delta_tracking();
        }
    }

    fn take_result_changes(&mut self) -> Option<Vec<PairKey>> {
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend(slot.engine.lock().take_result_changes()?);
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    fn pair_status_at(&self, pair: PairKey, t: Time) -> PairStatus {
        let (Some(sa), Some(sb)) = (self.router.shard_of(pair.0), self.router.shard_of(pair.1))
        else {
            return PairStatus::default();
        };
        match self.slot_of.get(&(sa, sb)) {
            Some(&slot) => self.slots[slot].engine.lock().pair_status_at(pair, t),
            // Pruned by the join plan: the policy guarantees the pair
            // can never be active at an observable time.
            None => PairStatus::default(),
        }
    }

    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        self.slots.iter().fold(None, |acc, s| {
            match (acc, s.engine.lock().node_cache_snapshot()) {
                (Some(x), Some(y)) => Some(x.merged(&y)),
                (x, None) => x,
                (None, y) => y,
            }
        })
    }

    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        self.slots.iter().fold(None, |acc, s| {
            match (acc, s.engine.lock().page_format_snapshot()) {
                (Some(x), Some(y)) => Some(x.merged(&y)),
                (x, None) => x,
                (None, y) => y,
            }
        })
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        publish_engine_totals(
            &self.obs,
            self.counters(),
            self.node_cache_snapshot(),
            self.page_format_snapshot(),
        );
        self.obs
            .counter("shard.migrations")
            .store(self.router.migrations());
        self.obs.gauge("shard.engines").set(self.slots.len() as i64);
        for (shard, (&a, &b)) in self.population_a.iter().zip(&self.population_b).enumerate() {
            self.obs
                .gauge(&format!("shard.population.a.{shard}"))
                .set(a as i64);
            self.obs
                .gauge(&format!("shard.population.b.{shard}"))
                .set(b as i64);
        }
        for s in &self.slots {
            let c = s.engine.lock().counters();
            let prefix = format!("shard.pair.{}_{}", s.shard_a, s.shard_b);
            self.obs
                .counter(&format!("{prefix}.node_pairs"))
                .store(c.node_pairs);
            self.obs
                .counter(&format!("{prefix}.pairs_emitted"))
                .store(c.pairs_emitted);
        }
    }
}
