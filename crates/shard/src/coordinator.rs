//! The shard coordinator: K×K (or fewer) shard-pair engines behind the
//! single-engine protocol.
//!
//! # Topology
//!
//! A [`PartitionPolicy`] splits each object set into `K` shards. For
//! every *joinable* shard pair `(i, j)` the coordinator builds one full
//! [`ContinuousJoinEngine`] over (A-shard `i`, B-shard `j`) — so an
//! A-object of shard `i` is indexed by every engine in row `i`, and a
//! B-object of shard `j` by every engine in column `j`. Each engine owns
//! its indexes outright; engines share only the buffer pool (one
//! simulated disk, like the paper's testbed) and are otherwise disjoint,
//! which is what makes the parallel fan-out deterministic.
//!
//! # Why per-pair results union to the single-engine answer
//!
//! Every (a, b) with `a` in shard `i`, `b` in shard `j` is watched by
//! exactly one engine — `(i, j)` — and by none after a migration removes
//! either object from that engine's row/column. The per-pair predicted
//! intersection intervals depend only on the two trajectories and the
//! probe window, not on tree shape, and the probe windows are the
//! single-engine ones: the MTB buckets live on a *global* time grid
//! (`bucket_of(t) = ⌊t / bucket_len⌋`), so a shard's buckets are a
//! subset of the unsharded engine's buckets with identical `t_eb`s, and
//! Theorem 2's per-bucket window `min(t_eb, now) + T_M` evaluates
//! identically per shard — the per-shard generalization of the paper's
//! argument. Hence `⋃ result_at` over the plan, deduplicated, equals the
//! single engine's `result_at` — the property the differential harness
//! pins across policies × K × threads, including across re-partitions.
//!
//! # Updates, migration, batches
//!
//! A same-shard update is applied (as a plain `apply_update`) to every
//! engine of the object's row/column. A partition-crossing update
//! becomes `remove_object` from the old row/column plus `insert_object`
//! into the new one — one logical update, exact mirror halves of
//! `apply_update`. [`apply_batch`](ContinuousJoinEngine::apply_batch)
//! projects the tick's update sequence onto each engine (preserving
//! order) and fans the per-engine op lists out over
//! [`cij_join::fan_out_tasks`] — engines are state-disjoint, so the
//! projection is exactly what each engine would have seen sequentially.
//!
//! # Online re-partitioning
//!
//! [`rebalance_to`](ShardCoordinator::rebalance_to) swaps the partition
//! policy *while the join runs* — the mechanism behind the adaptive
//! controller ([`enable_adaptive`](ShardCoordinator::enable_adaptive))
//! and directly drivable for forced split/merge/boundary-shift events.
//! The protocol, in four phases, all at one logical instant `now`:
//!
//! 1. **Diff** — the router re-evaluates the new policy against every
//!    live trajectory ([`ShardRouter::repartition`]) and returns the
//!    id-sorted movers.
//! 2. **Evict** — each mover is `remove_object`-ed from its old
//!    row/column under the *old* topology. Afterwards slot `(i, j)`
//!    holds exactly the objects whose old and new shards both equal
//!    `i` / `j` — the stayers — so surviving slots can be reused.
//! 3. **Rebuild** — the new join plan is laid out. A pair `(i, j)`
//!    joinable in both plans keeps its engine (stayers and their result
//!    intervals intact); other engines are built *empty* by the stored
//!    factory. Dropped engines drain their pending delta changelogs
//!    into the coordinator before they go — the delta extractor
//!    rechecks those pairs by membership, so dirt referring to
//!    re-homed pairs is harmless, and pairs pruned by the new join
//!    plan recheck as inactive exactly when their intervals say so.
//! 4. **Restore** — movers are re-registered into their new row/column
//!    (reused slots), and fresh slots get their *full* current
//!    membership, everything via
//!    [`restore_object`](ContinuousJoinEngine::restore_object) with the
//!    object's **original registration time**. That last part is the
//!    load-bearing bit: MTB buckets and Bˣ partitions key removal by
//!    update time, so the next producer update (which still carries the
//!    old `last_update`) must find the object filed where it would have
//!    been without the rebalance — and the recomputed probe windows end
//!    at-or-after the original ones, so per-tick results are unchanged.
//!
//! Update-driven `migrations` and policy-driven `rebalance.moved`
//! objects are counted separately; both conserve populations.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use cij_core::{publish_engine_totals, ContinuousJoinEngine, EngineConfig, PairKey, PairStatus};
use cij_geom::{MovingRect, Time};
use cij_join::{fan_out_tasks, JoinCounters};
use cij_obs::MetricsRegistry;
use cij_storage::{BufferPool, CacheSnapshot};
use cij_tpr::{ObjectId, TprError, TprResult};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};
use parking_lot::Mutex;

use crate::adaptive::{AdaptiveConfig, AdaptiveController};
use crate::policy::PartitionPolicy;
use crate::report::{PairReport, ShardReport};
use crate::router::{RebalanceMove, RouteDecision, ShardRouter};

/// Builds one shard-pair engine over the given subsets. The coordinator
/// passes a clone of its shared pool and a `threads = 1` configuration
/// (parallelism lives across engines, not inside them).
pub type ShardEngineFactory<'a> = dyn Fn(
        BufferPool,
        &EngineConfig,
        &[MovingObject],
        &[MovingObject],
        Time,
    ) -> TprResult<Box<dyn ContinuousJoinEngine + Send>>
    + 'a;

/// An owned, shareable engine factory the coordinator can keep for the
/// lifetime of the run — required for online re-partitioning, which
/// must build fresh shard-pair engines long after construction. Same
/// contract as [`ShardEngineFactory`].
pub type SharedShardEngineFactory = Arc<
    dyn Fn(
            BufferPool,
            &EngineConfig,
            &[MovingObject],
            &[MovingObject],
            Time,
        ) -> TprResult<Box<dyn ContinuousJoinEngine + Send>>
        + Send
        + Sync,
>;

/// One operation projected onto a shard-pair engine.
#[derive(Debug, Clone, Copy)]
enum Op {
    Apply(ObjectUpdate),
    Insert {
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
    },
    Remove {
        set: SetTag,
        id: ObjectId,
        old_mbr: MovingRect,
        last_update: Time,
    },
}

/// One re-registration in a rebalance's restore phase.
#[derive(Debug, Clone, Copy)]
struct RestoreOp {
    set: SetTag,
    id: ObjectId,
    mbr: MovingRect,
    registered_at: Time,
}

struct PairSlot {
    shard_a: usize,
    shard_b: usize,
    engine: Mutex<Box<dyn ContinuousJoinEngine + Send>>,
}

/// Names already published to the registry, so a topology change can
/// zero out gauges/counters of shards and pairs that no longer exist
/// (snapshots stay an honest view of the *current* topology).
#[derive(Default)]
struct PublishedTopology {
    shards: usize,
    pairs: HashSet<(usize, usize)>,
}

/// A `ContinuousJoinEngine` made of shard-pair engines (see the module
/// docs). Drop-in wherever a single engine runs: `run_simulation`, the
/// stream service's engine factory, the bench harness.
pub struct ShardCoordinator {
    policy: Arc<dyn PartitionPolicy>,
    pool: BufferPool,
    threads: usize,
    /// The per-engine configuration (threads = 1, metrics off) — kept
    /// so re-partitioning can build engines identical to construction.
    inner: EngineConfig,
    slots: Vec<PairSlot>,
    /// (shard_a, shard_b) → index into `slots` for joinable pairs.
    slot_of: HashMap<(usize, usize), usize>,
    /// Slot indices of row i (A-shard i) / column j (B-shard j).
    rows: Vec<Vec<usize>>,
    cols: Vec<Vec<usize>>,
    router: ShardRouter,
    population_a: Vec<usize>,
    population_b: Vec<usize>,
    /// Stored factory enabling online re-partitioning (`None` under the
    /// borrowed-factory constructor — rebalancing then errors).
    factory: Option<SharedShardEngineFactory>,
    /// Whether `enable_delta_tracking` was called — engines built
    /// mid-run must match the live slots' tracking state.
    delta_tracking: bool,
    /// Delta changelogs drained from engines dropped by a rebalance,
    /// surfaced on the next `take_result_changes`.
    pending_changes: Vec<PairKey>,
    adaptive: Option<AdaptiveController>,
    rebalances: u64,
    rebalance_moved: u64,
    /// The coordinator's registry (disabled unless `config.metrics`).
    /// Inner engines run with metrics off — the coordinator owns the
    /// sharded run's telemetry, publishing per-slot counters itself.
    obs: MetricsRegistry,
    published: Mutex<PublishedTopology>,
}

impl ShardCoordinator {
    /// Partitions both sets under `policy`, builds one engine per
    /// joinable shard pair via `factory` (each on a clone of `pool`),
    /// and readies the router. `config.threads` sets the coordinator's
    /// fan-out width; inner engines always run their own traversals
    /// sequentially.
    ///
    /// The factory is borrowed for construction only, so the resulting
    /// coordinator cannot re-partition online — use
    /// [`with_factory`](Self::with_factory) for that.
    pub fn new(
        pool: BufferPool,
        config: EngineConfig,
        policy: Arc<dyn PartitionPolicy>,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
        factory: &ShardEngineFactory<'_>,
    ) -> TprResult<Self> {
        let k = policy.shard_count();
        let mut router = ShardRouter::new(policy.clone());
        let mut parts_a: Vec<Vec<MovingObject>> = vec![Vec::new(); k];
        let mut parts_b: Vec<Vec<MovingObject>> = vec![Vec::new(); k];
        for o in set_a {
            parts_a[router.place(o.id, SetTag::A, &o.mbr, now)].push(*o);
        }
        for o in set_b {
            parts_b[router.place(o.id, SetTag::B, &o.mbr, now)].push(*o);
        }

        let obs = MetricsRegistry::enabled_if(config.metrics);
        pool.stats().register_in(&obs, "storage.pool");

        let inner = EngineConfig {
            threads: 1,
            // One registry per sharded run: inner engines stay silent and
            // the coordinator publishes their counters under per-pair
            // names (see `publish_metrics`).
            metrics: false,
            ..config
        };
        let mut slots = Vec::new();
        let mut slot_of = HashMap::new();
        let mut rows = vec![Vec::new(); k];
        let mut cols = vec![Vec::new(); k];
        for i in 0..k {
            for j in 0..k {
                if !policy.joinable(i, j) {
                    continue;
                }
                let engine = factory(pool.clone(), &inner, &parts_a[i], &parts_b[j], now)?;
                let idx = slots.len();
                slots.push(PairSlot {
                    shard_a: i,
                    shard_b: j,
                    engine: Mutex::new(engine),
                });
                slot_of.insert((i, j), idx);
                rows[i].push(idx);
                cols[j].push(idx);
            }
        }

        Ok(Self {
            policy,
            pool,
            threads: config.threads.max(1),
            inner,
            slots,
            slot_of,
            rows,
            cols,
            router,
            population_a: parts_a.iter().map(Vec::len).collect(),
            population_b: parts_b.iter().map(Vec::len).collect(),
            factory: None,
            delta_tracking: false,
            pending_changes: Vec::new(),
            adaptive: None,
            rebalances: 0,
            rebalance_moved: 0,
            obs,
            published: Mutex::new(PublishedTopology::default()),
        })
    }

    /// Like [`new`](Self::new), but stores the (shared, owned) factory
    /// so the coordinator can build engines mid-run — the constructor
    /// for anything that re-partitions:
    /// [`rebalance_to`](Self::rebalance_to) and
    /// [`enable_adaptive`](Self::enable_adaptive).
    pub fn with_factory(
        pool: BufferPool,
        config: EngineConfig,
        policy: Arc<dyn PartitionPolicy>,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
        factory: SharedShardEngineFactory,
    ) -> TprResult<Self> {
        let borrowed =
            |p: BufferPool, c: &EngineConfig, a: &[MovingObject], b: &[MovingObject], t: Time| {
                factory(p, c, a, b, t)
            };
        let mut this = Self::new(pool, config, policy, set_a, set_b, now, &borrowed)?;
        this.factory = Some(factory);
        Ok(this)
    }

    /// Shards per object set.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.policy.shard_count()
    }

    /// Shard-pair engines in the join plan.
    #[must_use]
    pub fn engine_count(&self) -> usize {
        self.slots.len()
    }

    /// Cross-shard migrations routed so far (update-driven).
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.router.migrations()
    }

    /// Re-partition events committed so far.
    #[must_use]
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Objects relocated by re-partitioning so far (policy-driven).
    #[must_use]
    pub fn rebalance_moved(&self) -> u64 {
        self.rebalance_moved
    }

    /// The shard currently holding `id`.
    #[must_use]
    pub fn shard_of(&self, id: ObjectId) -> Option<usize> {
        self.router.shard_of(id)
    }

    /// Arms the adaptive partition controller: observed trajectories
    /// feed its quantile sketch, and after every applied batch the
    /// coordinator re-partitions whenever the controller proposes a
    /// better policy (see [`AdaptiveController`]). The sketch is seeded
    /// from the current live population so the first decision is
    /// informed. Errors unless the coordinator was built
    /// [`with_factory`](Self::with_factory).
    pub fn enable_adaptive(&mut self, cfg: AdaptiveConfig) -> TprResult<()> {
        if self.factory.is_none() {
            return Err(TprError::Unsupported {
                what: "adaptive sharding requires ShardCoordinator::with_factory \
                       (a stored engine factory for online re-partitioning)"
                    .to_string(),
            });
        }
        let mut ctl = AdaptiveController::new(cfg);
        for (_, rec) in self.router.records() {
            ctl.observe(&rec.mbr);
        }
        self.adaptive = Some(ctl);
        Ok(())
    }

    /// Re-partitions the live join under `new_policy` at time `now`
    /// (see the module docs for the four-phase protocol) and returns
    /// how many objects moved. Errors unless the coordinator was built
    /// [`with_factory`](Self::with_factory).
    pub fn rebalance_to(
        &mut self,
        new_policy: Arc<dyn PartitionPolicy>,
        now: Time,
    ) -> TprResult<usize> {
        let factory = self.factory.clone().ok_or_else(|| TprError::Unsupported {
            what: "online re-partitioning requires ShardCoordinator::with_factory \
                   (a stored engine factory)"
                .to_string(),
        })?;

        // Phase 1 (diff): who moves, sorted by id.
        let moves = self.router.repartition(new_policy.clone());

        // Phase 2 (evict): remove movers from their old row/column,
        // under the old topology. Slot (i, j) then holds exactly its
        // stayers.
        let mut evictions: Vec<Vec<&RebalanceMove>> = vec![Vec::new(); self.slots.len()];
        for m in &moves {
            for &slot in self.fan(m.set, m.from) {
                evictions[slot].push(m);
            }
        }
        let results = fan_out_tasks(self.slots.len(), self.threads, |i| {
            if evictions[i].is_empty() {
                return Ok(());
            }
            let mut engine = self.slots[i].engine.lock();
            for m in &evictions[i] {
                engine.remove_object(m.set, m.id, &m.mbr, m.last_update, now)?;
            }
            Ok(())
        });
        results.into_iter().collect::<TprResult<()>>()?;
        drop(evictions);

        // Phase 3 (rebuild): lay out the new join plan, reusing the
        // engine of any pair joinable in both plans; build the rest
        // empty. Dropped engines give up their pending delta dirt.
        let new_k = new_policy.shard_count();
        let mut old_slots: Vec<Option<PairSlot>> = std::mem::take(&mut self.slots)
            .into_iter()
            .map(Some)
            .collect();
        let old_slot_of = std::mem::take(&mut self.slot_of);
        let mut slots = Vec::new();
        let mut slot_of = HashMap::new();
        let mut rows = vec![Vec::new(); new_k];
        let mut cols = vec![Vec::new(); new_k];
        let mut fresh = HashSet::new();
        for (i, row) in rows.iter_mut().enumerate() {
            for (j, col) in cols.iter_mut().enumerate() {
                if !new_policy.joinable(i, j) {
                    continue;
                }
                let idx = slots.len();
                let reused = old_slot_of.get(&(i, j)).and_then(|&s| old_slots[s].take());
                match reused {
                    Some(slot) => slots.push(slot),
                    None => {
                        let mut engine = factory(self.pool.clone(), &self.inner, &[], &[], now)?;
                        if self.delta_tracking {
                            engine.enable_delta_tracking();
                        }
                        slots.push(PairSlot {
                            shard_a: i,
                            shard_b: j,
                            engine: Mutex::new(engine),
                        });
                        fresh.insert(idx);
                    }
                }
                slot_of.insert((i, j), idx);
                row.push(idx);
                col.push(idx);
            }
        }
        for slot in old_slots.into_iter().flatten() {
            if let Some(changes) = slot.engine.lock().take_result_changes() {
                self.pending_changes.extend(changes);
            }
        }
        self.slots = slots;
        self.slot_of = slot_of;
        self.rows = rows;
        self.cols = cols;
        self.policy = new_policy;

        // Phase 4 (restore): movers into reused slots of their new
        // row/column; fresh slots get their full current membership —
        // both with the original registration time, id-sorted, via
        // restore_object (incremental probes; no initial join).
        let mut restores: Vec<Vec<RestoreOp>> = vec![Vec::new(); self.slots.len()];
        for m in &moves {
            for &slot in self.fan(m.set, m.to) {
                if !fresh.contains(&slot) {
                    restores[slot].push(RestoreOp {
                        set: m.set,
                        id: m.id,
                        mbr: m.mbr,
                        registered_at: m.last_update,
                    });
                }
            }
        }
        if !fresh.is_empty() {
            let mut members_a: Vec<Vec<RestoreOp>> = vec![Vec::new(); new_k];
            let mut members_b: Vec<Vec<RestoreOp>> = vec![Vec::new(); new_k];
            for (id, rec) in self.router.records() {
                let op = RestoreOp {
                    set: rec.set,
                    id,
                    mbr: rec.mbr,
                    registered_at: rec.last_update,
                };
                match rec.set {
                    SetTag::A => members_a[rec.shard].push(op),
                    SetTag::B => members_b[rec.shard].push(op),
                }
            }
            for side in members_a.iter_mut().chain(members_b.iter_mut()) {
                side.sort_unstable_by_key(|op| op.id);
            }
            for &slot in &fresh {
                let (i, j) = (self.slots[slot].shard_a, self.slots[slot].shard_b);
                restores[slot].extend_from_slice(&members_a[i]);
                restores[slot].extend_from_slice(&members_b[j]);
            }
        }
        let results = fan_out_tasks(self.slots.len(), self.threads, |i| {
            if restores[i].is_empty() {
                return Ok(());
            }
            let mut engine = self.slots[i].engine.lock();
            for r in &restores[i] {
                engine.restore_object(r.set, r.id, r.mbr, r.registered_at, now)?;
            }
            Ok(())
        });
        results.into_iter().collect::<TprResult<()>>()?;

        self.population_a = vec![0; new_k];
        self.population_b = vec![0; new_k];
        for (_, rec) in self.router.records() {
            match rec.set {
                SetTag::A => self.population_a[rec.shard] += 1,
                SetTag::B => self.population_b[rec.shard] += 1,
            }
        }
        self.rebalances += 1;
        self.rebalance_moved += moves.len() as u64;
        if self.obs.is_enabled() {
            self.obs.counter("shard.rebalances").store(self.rebalances);
            self.obs
                .counter("shard.rebalance.moved_objects")
                .store(self.rebalance_moved);
        }
        Ok(moves.len())
    }

    /// Asks the adaptive controller (when armed) whether the batch just
    /// applied warrants a re-partition, and commits it if so. Runs on
    /// the sequential path after every batch, so decisions depend only
    /// on the update stream.
    fn maybe_rebalance(&mut self, now: Time) -> TprResult<()> {
        let proposal = match self.adaptive.as_mut() {
            None => return Ok(()),
            Some(ctl) => {
                let pops: Vec<usize> = self
                    .population_a
                    .iter()
                    .zip(&self.population_b)
                    .map(|(a, b)| a + b)
                    .collect();
                ctl.decide(now, &pops)
            }
        };
        if let Some(policy) = proposal {
            self.rebalance_to(policy, now)?;
            if let Some(ctl) = self.adaptive.as_mut() {
                ctl.note_rebalanced(now);
            }
        }
        Ok(())
    }

    /// Aggregated diagnostics: per-pair counters and cache activity,
    /// shard populations, migrations and rebalances, and the shared
    /// pool's I/O. When metrics are enabled the report also carries a
    /// published [`MetricsSnapshot`](cij_obs::MetricsSnapshot) of the
    /// coordinator's registry.
    #[must_use]
    pub fn report(&self) -> ShardReport {
        let metrics = self.obs.is_enabled().then(|| {
            self.publish_metrics();
            self.obs.snapshot()
        });
        ShardReport {
            policy: self.policy.name(),
            k: self.policy.shard_count(),
            threads: self.threads,
            migrations: self.router.migrations(),
            rebalances: self.rebalances,
            rebalance_moved: self.rebalance_moved,
            population_a: self.population_a.clone(),
            population_b: self.population_b.clone(),
            pairs: self
                .slots
                .iter()
                .map(|s| {
                    let engine = s.engine.lock();
                    PairReport {
                        shard_a: s.shard_a,
                        shard_b: s.shard_b,
                        counters: engine.counters(),
                        cache: engine.node_cache_snapshot(),
                    }
                })
                .collect(),
            io: self.pool.stats().snapshot(),
            metrics,
        }
    }

    /// The slot indices an update of (`set`, shard) must reach: the
    /// whole row for A-objects, the whole column for B-objects.
    fn fan(&self, set: SetTag, shard: usize) -> &[usize] {
        match set {
            SetTag::A => &self.rows[shard],
            SetTag::B => &self.cols[shard],
        }
    }

    /// Projects one update onto per-slot operations, updating the
    /// router's placement (and the adaptive sketch) as a side effect.
    fn route_ops(&mut self, update: &ObjectUpdate, ops: &mut [Vec<Op>], now: Time) {
        if let Some(ctl) = self.adaptive.as_mut() {
            ctl.observe(&update.new_mbr);
        }
        match self.router.route(update, now) {
            RouteDecision::Stay(shard) => {
                for &slot in self.fan(update.set, shard) {
                    ops[slot].push(Op::Apply(*update));
                }
            }
            RouteDecision::Migrate { from, to } => {
                for &slot in self.fan(update.set, from) {
                    ops[slot].push(Op::Remove {
                        set: update.set,
                        id: update.id,
                        old_mbr: update.old_mbr,
                        last_update: update.last_update,
                    });
                }
                for &slot in self.fan(update.set, to) {
                    ops[slot].push(Op::Insert {
                        set: update.set,
                        id: update.id,
                        mbr: update.new_mbr,
                    });
                }
                match update.set {
                    SetTag::A => {
                        self.population_a[from] -= 1;
                        self.population_a[to] += 1;
                    }
                    SetTag::B => {
                        self.population_b[from] -= 1;
                        self.population_b[to] += 1;
                    }
                }
            }
        }
    }

    /// Executes per-slot op lists: fans slots with work out over the
    /// coordinator's threads, surfaces the first error in slot order.
    fn execute_ops(&self, ops: &[Vec<Op>], now: Time) -> TprResult<()> {
        let results = fan_out_tasks(self.slots.len(), self.threads, |i| {
            let slot_ops = &ops[i];
            if slot_ops.is_empty() {
                return Ok(());
            }
            let mut engine = self.slots[i].engine.lock();
            for op in slot_ops {
                match *op {
                    Op::Apply(ref u) => engine.apply_update(u, now)?,
                    Op::Insert { set, id, mbr } => engine.insert_object(set, id, mbr, now)?,
                    Op::Remove {
                        set,
                        id,
                        ref old_mbr,
                        last_update,
                    } => engine.remove_object(set, id, old_mbr, last_update, now)?,
                }
            }
            Ok(())
        });
        results.into_iter().collect()
    }

    /// Runs `f` against every engine in parallel, surfacing the first
    /// error in slot order.
    fn for_each_engine(
        &self,
        f: impl Fn(&mut (dyn ContinuousJoinEngine + Send)) -> TprResult<()> + Sync,
    ) -> TprResult<()> {
        let results = fan_out_tasks(self.slots.len(), self.threads, |i| {
            f(&mut **self.slots[i].engine.lock())
        });
        results.into_iter().collect()
    }
}

impl ContinuousJoinEngine for ShardCoordinator {
    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        self.for_each_engine(|e| e.run_initial_join(now))
    }

    fn advance_time(&mut self, now: Time) -> TprResult<()> {
        self.for_each_engine(|e| e.advance_time(now))
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        self.apply_batch(std::slice::from_ref(update), now)
    }

    fn apply_batch(&mut self, updates: &[ObjectUpdate], now: Time) -> TprResult<()> {
        if updates.is_empty() {
            return Ok(());
        }
        let mut ops: Vec<Vec<Op>> = vec![Vec::new(); self.slots.len()];
        for u in updates {
            self.route_ops(u, &mut ops, now);
        }
        self.execute_ops(&ops, now)?;
        self.maybe_rebalance(now)
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        if let Some(ctl) = self.adaptive.as_mut() {
            ctl.observe(&mbr);
        }
        let shard = self.router.place(id, set, &mbr, now);
        match set {
            SetTag::A => self.population_a[shard] += 1,
            SetTag::B => self.population_b[shard] += 1,
        }
        for &slot in self.fan(set, shard) {
            self.slots[slot]
                .engine
                .lock()
                .insert_object(set, id, mbr, now)?;
        }
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        last_update: Time,
        now: Time,
    ) -> TprResult<()> {
        let Some(record) = self.router.remove(id) else {
            return Err(TprError::ObjectNotFound(id));
        };
        let shard = record.shard;
        match set {
            SetTag::A => self.population_a[shard] -= 1,
            SetTag::B => self.population_b[shard] -= 1,
        }
        for &slot in self.fan(set, shard) {
            self.slots[slot]
                .engine
                .lock()
                .remove_object(set, id, old_mbr, last_update, now)?;
        }
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        for slot in &self.slots {
            slot.engine.lock().gc(now);
        }
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend(slot.engine.lock().result_at(t));
        }
        // Each pair lives in exactly one engine, so the dedup is a
        // no-op in correct runs — kept so the merged answer is
        // canonical by construction.
        out.sort_unstable();
        out.dedup();
        out
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.slots.iter().fold(JoinCounters::new(), |acc, s| {
            acc.merged(s.engine.lock().counters())
        })
    }

    fn enable_delta_tracking(&mut self) {
        self.delta_tracking = true;
        for slot in &self.slots {
            slot.engine.lock().enable_delta_tracking();
        }
    }

    fn take_result_changes(&mut self) -> Option<Vec<PairKey>> {
        let mut out = Vec::new();
        for slot in &self.slots {
            out.extend(slot.engine.lock().take_result_changes()?);
        }
        // Dirt inherited from engines a rebalance dropped: the consumer
        // rechecks by membership, so stale references are harmless and
        // pruned pairs resolve to their true (inactive) status.
        out.append(&mut self.pending_changes);
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    fn pair_status_at(&self, pair: PairKey, t: Time) -> PairStatus {
        let (Some(sa), Some(sb)) = (self.router.shard_of(pair.0), self.router.shard_of(pair.1))
        else {
            return PairStatus::default();
        };
        match self.slot_of.get(&(sa, sb)) {
            Some(&slot) => self.slots[slot].engine.lock().pair_status_at(pair, t),
            // Pruned by the join plan: the policy guarantees the pair
            // can never be active at an observable time.
            None => PairStatus::default(),
        }
    }

    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        self.slots.iter().fold(None, |acc, s| {
            match (acc, s.engine.lock().node_cache_snapshot()) {
                (Some(x), Some(y)) => Some(x.merged(&y)),
                (x, None) => x,
                (None, y) => y,
            }
        })
    }

    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        self.slots.iter().fold(None, |acc, s| {
            match (acc, s.engine.lock().page_format_snapshot()) {
                (Some(x), Some(y)) => Some(x.merged(&y)),
                (x, None) => x,
                (None, y) => y,
            }
        })
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        publish_engine_totals(
            &self.obs,
            self.counters(),
            self.node_cache_snapshot(),
            self.page_format_snapshot(),
        );
        self.obs
            .counter("shard.migrations")
            .store(self.router.migrations());
        self.obs.counter("shard.rebalances").store(self.rebalances);
        self.obs
            .counter("shard.rebalance.moved_objects")
            .store(self.rebalance_moved);
        self.obs.gauge("shard.engines").set(self.slots.len() as i64);
        let k = self.population_a.len();
        for (shard, (&a, &b)) in self.population_a.iter().zip(&self.population_b).enumerate() {
            self.obs
                .gauge(&format!("shard.population.a.{shard}"))
                .set(a as i64);
            self.obs
                .gauge(&format!("shard.population.b.{shard}"))
                .set(b as i64);
        }
        let current: HashSet<(usize, usize)> =
            self.slots.iter().map(|s| (s.shard_a, s.shard_b)).collect();
        for s in &self.slots {
            let c = s.engine.lock().counters();
            let prefix = format!("shard.pair.{}_{}", s.shard_a, s.shard_b);
            self.obs
                .counter(&format!("{prefix}.node_pairs"))
                .store(c.node_pairs);
            self.obs
                .counter(&format!("{prefix}.pairs_emitted"))
                .store(c.pairs_emitted);
        }
        // Zero out names from topologies a rebalance retired, so the
        // snapshot only attributes load to shards/pairs that exist.
        let mut published = self.published.lock();
        for shard in k..published.shards {
            self.obs
                .gauge(&format!("shard.population.a.{shard}"))
                .set(0);
            self.obs
                .gauge(&format!("shard.population.b.{shard}"))
                .set(0);
        }
        for &(i, j) in published.pairs.difference(&current) {
            self.obs
                .counter(&format!("shard.pair.{i}_{j}.node_pairs"))
                .store(0);
            self.obs
                .counter(&format!("shard.pair.{i}_{j}.pairs_emitted"))
                .store(0);
        }
        published.shards = k;
        published.pairs = current;
    }
}
