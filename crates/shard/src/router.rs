//! The shard router: the one place that knows where every object lives.
//!
//! The router owns the object → shard placement map. Engines never see
//! it: the [`ShardCoordinator`](crate::ShardCoordinator) asks the router
//! where an update's object *was*, asks the policy where it *belongs*
//! now, and turns a disagreement into a migration (delete from every
//! engine of the old shard's row/column, insert into the new one's)
//! inside the same logical update.

use std::collections::HashMap;
use std::sync::Arc;

use cij_geom::MovingRect;
use cij_tpr::ObjectId;

use crate::policy::PartitionPolicy;

/// Where an update's object must be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// The object stays in its shard: apply the update in place.
    Stay(usize),
    /// The trajectory change crossed a partition boundary: remove the
    /// object from shard `from`, insert it into shard `to`.
    Migrate {
        /// Shard the object leaves.
        from: usize,
        /// Shard the object joins.
        to: usize,
    },
}

/// Object → shard placement, driven by a [`PartitionPolicy`].
///
/// Ids are globally unique across both object sets (the workload keeps
/// B ids disjoint from A ids), so one map serves both sides.
pub struct ShardRouter {
    policy: Arc<dyn PartitionPolicy>,
    placement: HashMap<ObjectId, usize>,
    migrations: u64,
}

impl ShardRouter {
    /// An empty router over `policy`.
    #[must_use]
    pub fn new(policy: Arc<dyn PartitionPolicy>) -> Self {
        Self {
            policy,
            placement: HashMap::new(),
            migrations: 0,
        }
    }

    /// Places a new object and returns its shard.
    pub fn place(&mut self, id: ObjectId, mbr: &MovingRect) -> usize {
        let shard = self.policy.shard_of(id, mbr);
        self.placement.insert(id, shard);
        shard
    }

    /// The shard currently holding `id`, if the router has placed it.
    #[must_use]
    pub fn shard_of(&self, id: ObjectId) -> Option<usize> {
        self.placement.get(&id).copied()
    }

    /// Routes a trajectory update: re-evaluates the policy against the
    /// new trajectory, records the move if the shard changed, and says
    /// how the coordinator must apply the update. Unknown objects are
    /// placed fresh and reported as `Stay`.
    pub fn route(&mut self, id: ObjectId, new_mbr: &MovingRect) -> RouteDecision {
        let to = self.policy.shard_of(id, new_mbr);
        match self.placement.insert(id, to) {
            Some(from) if from != to => {
                self.migrations += 1;
                RouteDecision::Migrate { from, to }
            }
            _ => RouteDecision::Stay(to),
        }
    }

    /// Forgets `id`, returning the shard that held it.
    pub fn remove(&mut self, id: ObjectId) -> Option<usize> {
        self.placement.remove(&id)
    }

    /// Cross-shard migrations routed so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Number of placed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// Whether no object has been placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use cij_geom::Rect;

    use super::*;
    use crate::policy::VelocityBandPolicy;

    fn rect(v: [f64; 2]) -> MovingRect {
        MovingRect::rigid(Rect::new([0.0, 0.0], [1.0, 1.0]), v, 0.0)
    }

    #[test]
    fn routes_stays_and_migrations() {
        let mut r = ShardRouter::new(Arc::new(VelocityBandPolicy::new(4, 4.0)));
        let id = ObjectId(7);
        assert_eq!(r.place(id, &rect([0.5, 0.0])), 0);
        assert_eq!(r.shard_of(id), Some(0));
        // Same band: stay.
        assert_eq!(r.route(id, &rect([0.9, 0.0])), RouteDecision::Stay(0));
        assert_eq!(r.migrations(), 0);
        // Band 0 → band 3: migrate.
        assert_eq!(
            r.route(id, &rect([3.9, 0.0])),
            RouteDecision::Migrate { from: 0, to: 3 }
        );
        assert_eq!(r.migrations(), 1);
        assert_eq!(r.shard_of(id), Some(3));
        // Unknown object: placed fresh, no migration counted.
        assert_eq!(
            r.route(ObjectId(99), &rect([0.1, 0.0])),
            RouteDecision::Stay(0)
        );
        assert_eq!(r.migrations(), 1);
        assert_eq!(r.len(), 2);
    }
}
