//! The shard router: the one place that knows where every object lives.
//!
//! The router owns the object → shard placement map. Engines never see
//! it: the [`ShardCoordinator`](crate::ShardCoordinator) asks the router
//! where an update's object *was*, asks the policy where it *belongs*
//! now, and turns a disagreement into a migration (delete from every
//! engine of the old shard's row/column, insert into the new one's)
//! inside the same logical update.
//!
//! Since the adaptive-sharding work the router keeps a full
//! [`ObjectRecord`] per object — set, shard, current trajectory, and
//! the time the trajectory was *registered* (the tick the update was
//! applied, which under the stream service's coalescing can differ from
//! the trajectory's own reference time). That record is what makes
//! online re-partitioning possible: [`repartition`](ShardRouter::repartition)
//! re-evaluates a new policy against every live trajectory and hands
//! the coordinator the exact batch of moves, each carrying the original
//! registration time so engines that key removal on update time (MTB
//! buckets, Bˣ partitions) can re-file the object where the *next*
//! producer update will look for it.

use std::collections::HashMap;
use std::sync::Arc;

use cij_geom::{MovingRect, Time};
use cij_tpr::ObjectId;
use cij_workload::{ObjectUpdate, SetTag};

use crate::policy::PartitionPolicy;

/// Where an update's object must be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// The object stays in its shard: apply the update in place.
    Stay(usize),
    /// The trajectory change crossed a partition boundary: remove the
    /// object from shard `from`, insert it into shard `to`.
    Migrate {
        /// Shard the object leaves.
        from: usize,
        /// Shard the object joins.
        to: usize,
    },
}

/// Everything the router knows about one live object.
#[derive(Debug, Clone, Copy)]
pub struct ObjectRecord {
    /// Which object set the object belongs to.
    pub set: SetTag,
    /// The shard currently holding the object.
    pub shard: usize,
    /// The trajectory the engines currently index.
    pub mbr: MovingRect,
    /// When that trajectory was registered — the tick the last update
    /// was *applied* (not the trajectory's `t_ref`; the stream layer
    /// may apply a coalesced update later than it was captured).
    pub last_update: Time,
}

/// One object relocation in a batched re-partition.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceMove {
    /// The object being moved.
    pub id: ObjectId,
    /// Its object set.
    pub set: SetTag,
    /// Shard under the old policy.
    pub from: usize,
    /// Shard under the new policy.
    pub to: usize,
    /// The trajectory the engines currently index (what must be removed
    /// from `from` and restored into `to`).
    pub mbr: MovingRect,
    /// The trajectory's registration time — restores must preserve it.
    pub last_update: Time,
}

/// Object → shard placement, driven by a [`PartitionPolicy`].
///
/// Ids are globally unique across both object sets (the workload keeps
/// B ids disjoint from A ids), so one map serves both sides.
pub struct ShardRouter {
    policy: Arc<dyn PartitionPolicy>,
    records: HashMap<ObjectId, ObjectRecord>,
    migrations: u64,
    rebalanced: u64,
}

impl ShardRouter {
    /// An empty router over `policy`.
    #[must_use]
    pub fn new(policy: Arc<dyn PartitionPolicy>) -> Self {
        Self {
            policy,
            records: HashMap::new(),
            migrations: 0,
            rebalanced: 0,
        }
    }

    /// The policy currently driving placement.
    #[must_use]
    pub fn policy(&self) -> &Arc<dyn PartitionPolicy> {
        &self.policy
    }

    /// Places a new object registered at `now` and returns its shard.
    pub fn place(&mut self, id: ObjectId, set: SetTag, mbr: &MovingRect, now: Time) -> usize {
        let shard = self.policy.shard_of(id, mbr);
        self.records.insert(
            id,
            ObjectRecord {
                set,
                shard,
                mbr: *mbr,
                last_update: now,
            },
        );
        shard
    }

    /// The shard currently holding `id`, if the router has placed it.
    #[must_use]
    pub fn shard_of(&self, id: ObjectId) -> Option<usize> {
        self.records.get(&id).map(|r| r.shard)
    }

    /// The full record for `id`, if placed.
    #[must_use]
    pub fn record(&self, id: ObjectId) -> Option<&ObjectRecord> {
        self.records.get(&id)
    }

    /// All live records, in hash order — callers that need determinism
    /// (the rebalance path) sort what they extract.
    pub fn records(&self) -> impl Iterator<Item = (ObjectId, &ObjectRecord)> {
        self.records.iter().map(|(&id, r)| (id, r))
    }

    /// Routes a trajectory update applied at `now`: re-evaluates the
    /// policy against the new trajectory, records the move if the shard
    /// changed, and says how the coordinator must apply the update.
    /// Unknown objects are placed fresh and reported as `Stay`.
    pub fn route(&mut self, update: &ObjectUpdate, now: Time) -> RouteDecision {
        let to = self.policy.shard_of(update.id, &update.new_mbr);
        let prev = self.records.insert(
            update.id,
            ObjectRecord {
                set: update.set,
                shard: to,
                mbr: update.new_mbr,
                last_update: now,
            },
        );
        match prev {
            Some(r) if r.shard != to => {
                self.migrations += 1;
                RouteDecision::Migrate { from: r.shard, to }
            }
            _ => RouteDecision::Stay(to),
        }
    }

    /// Forgets `id`, returning the record that held it.
    pub fn remove(&mut self, id: ObjectId) -> Option<ObjectRecord> {
        self.records.remove(&id)
    }

    /// Re-partitions every live object under `new_policy`: swaps the
    /// policy in, updates placements, and returns the objects whose
    /// shard changed — sorted by id so the coordinator's batched
    /// rebalance is deterministic regardless of hash-map iteration
    /// order. Moves are counted in [`rebalanced`](Self::rebalanced),
    /// *not* in [`migrations`](Self::migrations): update-driven and
    /// policy-driven relocations are separate phenomena in the reports.
    pub fn repartition(&mut self, new_policy: Arc<dyn PartitionPolicy>) -> Vec<RebalanceMove> {
        let mut moves = Vec::new();
        for (&id, rec) in &mut self.records {
            let to = new_policy.shard_of(id, &rec.mbr);
            if to != rec.shard {
                moves.push(RebalanceMove {
                    id,
                    set: rec.set,
                    from: rec.shard,
                    to,
                    mbr: rec.mbr,
                    last_update: rec.last_update,
                });
                rec.shard = to;
            }
        }
        moves.sort_unstable_by_key(|m| m.id);
        self.rebalanced += moves.len() as u64;
        self.policy = new_policy;
        moves
    }

    /// Cross-shard migrations routed so far (update-driven).
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Objects relocated by re-partitioning so far (policy-driven).
    #[must_use]
    pub fn rebalanced(&self) -> u64 {
        self.rebalanced
    }

    /// Number of placed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no object has been placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use cij_geom::Rect;

    use super::*;
    use crate::policy::{VelocityBandPolicy, VelocityBoundsPolicy};

    fn rect(v: [f64; 2]) -> MovingRect {
        MovingRect::rigid(Rect::new([0.0, 0.0], [1.0, 1.0]), v, 0.0)
    }

    fn update(id: ObjectId, old: [f64; 2], new: [f64; 2]) -> ObjectUpdate {
        ObjectUpdate {
            set: SetTag::A,
            id,
            old_mbr: rect(old),
            new_mbr: rect(new),
            last_update: 0.0,
        }
    }

    #[test]
    fn routes_stays_and_migrations() {
        let mut r = ShardRouter::new(Arc::new(VelocityBandPolicy::new(4, 4.0)));
        let id = ObjectId(7);
        assert_eq!(r.place(id, SetTag::A, &rect([0.5, 0.0]), 0.0), 0);
        assert_eq!(r.shard_of(id), Some(0));
        // Same band: stay — but the record tracks the new trajectory
        // and registration time.
        assert_eq!(
            r.route(&update(id, [0.5, 0.0], [0.9, 0.0]), 3.0),
            RouteDecision::Stay(0)
        );
        assert_eq!(r.migrations(), 0);
        let rec = r.record(id).unwrap();
        assert_eq!(rec.last_update, 3.0);
        assert_eq!(rec.mbr.vlo, [0.9, 0.0]);
        // Band 0 → band 3: migrate.
        assert_eq!(
            r.route(&update(id, [0.9, 0.0], [3.9, 0.0]), 5.0),
            RouteDecision::Migrate { from: 0, to: 3 }
        );
        assert_eq!(r.migrations(), 1);
        assert_eq!(r.shard_of(id), Some(3));
        // Unknown object: placed fresh, no migration counted.
        assert_eq!(
            r.route(&update(ObjectId(99), [0.1, 0.0], [0.1, 0.0]), 5.0),
            RouteDecision::Stay(0)
        );
        assert_eq!(r.migrations(), 1);
        assert_eq!(r.len(), 2);
        let gone = r.remove(id).unwrap();
        assert_eq!(gone.shard, 3);
        assert_eq!(gone.last_update, 5.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn repartition_moves_exactly_the_crossers_sorted_by_id() {
        let mut r = ShardRouter::new(Arc::new(VelocityBandPolicy::new(2, 4.0)));
        // Speeds 0.5, 1.5, 2.5, 3.5 under equal-width K=2 bands split
        // at 2.0 → shards 0, 0, 1, 1.
        for (i, v) in [0.5, 1.5, 2.5, 3.5].into_iter().enumerate() {
            r.place(ObjectId(i as u64), SetTag::A, &rect([v, 0.0]), 1.0);
        }
        assert_eq!(r.shard_of(ObjectId(1)), Some(0));
        // New boundary at 1.0: objects 1, 2, 3 belong in shard 1 → only
        // object 1 moves.
        let moves = r.repartition(Arc::new(VelocityBoundsPolicy::new(vec![1.0])));
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].id, ObjectId(1));
        assert_eq!((moves[0].from, moves[0].to), (0, 1));
        assert_eq!(moves[0].last_update, 1.0);
        assert_eq!(r.shard_of(ObjectId(1)), Some(1));
        assert_eq!(r.rebalanced(), 1);
        assert_eq!(r.migrations(), 0, "rebalance must not count as migration");
        // Splitting to K=3 moves the fast half up, ids in order.
        let moves = r.repartition(Arc::new(VelocityBoundsPolicy::new(vec![1.0, 3.0])));
        assert_eq!(
            moves.iter().map(|m| m.id.0).collect::<Vec<_>>(),
            vec![3],
            "only 3.5 crosses the new 3.0 edge"
        );
        assert_eq!(r.shard_of(ObjectId(3)), Some(2));
        assert_eq!(r.rebalanced(), 2);
    }
}
