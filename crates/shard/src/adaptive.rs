//! The adaptive partition controller: telemetry in, policies out.
//!
//! Fixed equal-width bands collapse on skew — the seed BENCH_shard run
//! put 646 of 1000 A-objects in band 0 at K=4, so one engine owned the
//! workload and the sharded run lost wall-clock to the single engine
//! while "winning" on logical reads. *Speed Partitioning for Indexing
//! Moving Objects* and *Boosting Moving Object Indexing through
//! Velocity Partitioning* (PAPERS.md) both conclude boundaries must
//! come from the observed distribution, not the domain: equal-**weight**
//! bands make every shard-pair engine carry the same population, which
//! is simultaneously the balance condition for the parallel fan-out and
//! the condition that keeps each per-shard velocity rectangle tight.
//!
//! The controller is a small deterministic state machine owned by the
//! [`ShardCoordinator`](crate::ShardCoordinator):
//!
//! * **Observe** — every routed trajectory feeds its partition-axis
//!   value (worst-corner speed, or x-center for the spatial axis) into
//!   a [`QuantileSketch`]. Feeding happens in the coordinator's
//!   *sequential* routing phase, so the sketch contents are independent
//!   of the fan-out thread count.
//! * **Decide** — once per applied batch the coordinator asks
//!   [`decide`](AdaptiveController::decide). A re-partition is proposed
//!   when the population imbalance (max/mean over combined per-shard
//!   populations) exceeds the threshold, or when the population drifted
//!   far enough from `target_shard_population` that the shard count
//!   itself should change (split/merge). The proposal is a
//!   [`VelocityBoundsPolicy`] / [`SpatialBoundsPolicy`] whose edges
//!   minimize the sketch's churn-aware cost
//!   ([`QuantileSketch::partition`]): a quadratic balance term plus
//!   [`churn_penalty`](AdaptiveConfig::churn_penalty) times the mass
//!   living next to each edge. On smooth distributions this is the
//!   equal-weight split; on clustered ones (VelocitySkew) the edges
//!   snap into inter-cluster gaps, because an edge inside a cluster is
//!   paid for on every re-steer that crosses it (a cross-shard
//!   migration costs roughly one extra delete+insert across the
//!   object's whole engine fan), while a bounded population imbalance
//!   only costs tree depth. When several edges land in the same gap,
//!   the parts between them are empty — and an empty shard still owns
//!   a full row and column of pair engines — so the controller merges
//!   empty parts away and the proposal's shard count drops to the
//!   observed cluster count (never below
//!   [`min_k`](AdaptiveConfig::min_k)).
//! * **Decay** — after the coordinator commits a rebalance it calls
//!   [`note_rebalanced`](AdaptiveController::note_rebalanced): the
//!   sketch halves (newer observations dominate the next decision) and
//!   the cooldown window opens.
//!
//! Every input to a decision (sketch counts, populations, tick times)
//! is a deterministic function of the applied update stream, so WAL
//! replay reproduces the exact same sequence of re-partitions — the
//! property the stream-layer recovery test pins.

use std::sync::Arc;

use cij_geom::{MovingRect, Time};
use cij_obs::QuantileSketch;

use crate::policy::{
    worst_corner_speed, PartitionPolicy, SpatialBoundsPolicy, VelocityBoundsPolicy,
};

/// Which distribution the controller partitions on.
#[derive(Debug, Clone, Copy)]
pub enum AdaptiveAxis {
    /// Band on velocity magnitude (worst-corner speed); the sketch
    /// spans `[0, max_speed]`.
    Velocity {
        /// The workload's top speed (sketch range upper bound; faster
        /// observations clamp).
        max_speed: f64,
    },
    /// Strip on x-center; the sketch spans `[0, space]`. Emitted
    /// policies prune shard pairs farther than `reach` apart — `reach`
    /// must dominate `2·max_speed·T_M + 2·extent` exactly as for
    /// [`SpatialGridPolicy`](crate::SpatialGridPolicy).
    Space {
        /// The workload's space extent.
        space: f64,
        /// The join-plan pruning reach.
        reach: f64,
    },
}

/// Tuning for the adaptive controller. Build with
/// [`AdaptiveConfig::velocity`] / [`AdaptiveConfig::spatial`] and
/// override fields as needed.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// The partition axis (and sketch range).
    pub axis: AdaptiveAxis,
    /// Re-partition when `max(pop) / mean(pop)` exceeds this (combined
    /// A+B population per shard). Must be ≥ 1.
    pub imbalance_threshold: f64,
    /// Minimum time between re-partitions, in simulation time units.
    pub cooldown: Time,
    /// When set, the controller also re-partitions to keep shards near
    /// this population: the proposed shard count is
    /// `ceil(total / target)` clamped into `[min_k, max_k]` — the
    /// split/merge path.
    pub target_shard_population: Option<usize>,
    /// Smallest shard count a split/merge may propose.
    pub min_k: usize,
    /// Largest shard count a split/merge may propose.
    pub max_k: usize,
    /// Observations the sketch must hold before any decision fires.
    pub min_weight: u64,
    /// Weight of the migration-churn term in the boundary objective
    /// (see [`QuantileSketch::partition`]): each candidate edge is
    /// charged this multiple of the mass share in its two flanking
    /// sketch buckets. `0` reduces to pure population balance.
    pub churn_penalty: f64,
    /// Sketch resolution (buckets over the axis range).
    pub sketch_buckets: usize,
}

impl AdaptiveConfig {
    /// Velocity-axis defaults: threshold 2, cooldown 10 time units,
    /// fixed shard count, 256-bucket sketch warm after 64 observations.
    #[must_use]
    pub fn velocity(max_speed: f64) -> Self {
        Self {
            axis: AdaptiveAxis::Velocity { max_speed },
            imbalance_threshold: 2.0,
            cooldown: 10.0,
            target_shard_population: None,
            min_k: 2,
            max_k: 8,
            min_weight: 64,
            sketch_buckets: 256,
            churn_penalty: 24.0,
        }
    }

    /// Spatial-axis defaults (same knobs as [`Self::velocity`]).
    #[must_use]
    pub fn spatial(space: f64, reach: f64) -> Self {
        Self {
            axis: AdaptiveAxis::Space { space, reach },
            ..Self::velocity(1.0)
        }
    }
}

/// The decision engine (see the module docs). Owned by the coordinator;
/// not constructed directly by users —
/// [`ShardCoordinator::enable_adaptive`](crate::ShardCoordinator::enable_adaptive)
/// builds and seeds it.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    cfg: AdaptiveConfig,
    sketch: QuantileSketch,
    /// When the last re-partition committed (cooldown anchor); also set
    /// on a no-op decision so an unchangeable imbalance does not
    /// re-evaluate every tick.
    last_action: Option<Time>,
    /// The edges of the last policy this controller emitted, for the
    /// "would not actually move anything" skip.
    last_edges: Option<Vec<f64>>,
}

impl AdaptiveController {
    /// A fresh controller. Panics if the config is inconsistent
    /// (`min_k > max_k`, `min_k == 0`, threshold < 1, or a
    /// non-positive axis range).
    #[must_use]
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(cfg.min_k >= 1 && cfg.min_k <= cfg.max_k, "bad k range");
        assert!(
            cfg.imbalance_threshold >= 1.0,
            "threshold below 1 always fires"
        );
        let hi = match cfg.axis {
            AdaptiveAxis::Velocity { max_speed } => max_speed,
            AdaptiveAxis::Space { space, .. } => space,
        };
        assert!(hi > 0.0, "axis range must be positive");
        Self {
            sketch: QuantileSketch::new(0.0, hi, cfg.sketch_buckets.max(1)),
            cfg,
            last_action: None,
            last_edges: None,
        }
    }

    /// The configuration the controller runs under.
    #[must_use]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The value of the partition axis for a trajectory.
    #[must_use]
    pub fn axis_value(&self, mbr: &MovingRect) -> f64 {
        match self.cfg.axis {
            AdaptiveAxis::Velocity { .. } => worst_corner_speed(mbr),
            AdaptiveAxis::Space { .. } => (mbr.lo[0] + mbr.hi[0]) / 2.0,
        }
    }

    /// Feeds one routed trajectory into the sketch. Must be called from
    /// a sequential phase — determinism of the sketch is what makes
    /// rebalance decisions replay-identical.
    pub fn observe(&mut self, mbr: &MovingRect) {
        self.sketch.observe(self.axis_value(mbr));
    }

    /// Decayed observation weight currently in the sketch.
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.sketch.weight()
    }

    /// Asks whether the coordinator should re-partition now, given the
    /// current combined per-shard populations. Returns the replacement
    /// policy, or `None` to stand pat. Pure function of the controller
    /// state and arguments — no clocks, no randomness.
    pub fn decide(&mut self, now: Time, populations: &[usize]) -> Option<Arc<dyn PartitionPolicy>> {
        let k = populations.len();
        let total: usize = populations.iter().sum();
        if k == 0 || total == 0 || self.sketch.weight() < self.cfg.min_weight {
            return None;
        }
        if let Some(t) = self.last_action {
            if now - t < self.cfg.cooldown {
                return None;
            }
        }
        let max = *populations.iter().max().expect("k > 0") as f64;
        let mean = total as f64 / k as f64;
        let imbalance = max / mean;

        let desired_k = match self.cfg.target_shard_population {
            Some(target) if target > 0 => {
                total.div_ceil(target).clamp(self.cfg.min_k, self.cfg.max_k)
            }
            _ => k,
        };
        if imbalance <= self.cfg.imbalance_threshold && desired_k == k {
            return None;
        }

        let edges = self
            .sketch
            .partition(desired_k, self.cfg.churn_penalty.max(0.0));
        if edges.len() + 1 != desired_k {
            return None; // sketch emptied by decay: stand pat
        }
        let edges = self.merge_empty_parts(edges);
        // Skip (but open the cooldown window) when the proposal is the
        // one already in force — an imbalance the axis cannot express
        // would otherwise re-trigger every batch.
        let span = match self.cfg.axis {
            AdaptiveAxis::Velocity { max_speed } => max_speed,
            AdaptiveAxis::Space { space, .. } => space,
        };
        let eps = span * 1e-9;
        if let Some(prev) = &self.last_edges {
            if prev.len() == edges.len()
                && prev.iter().zip(&edges).all(|(a, b)| (a - b).abs() <= eps)
            {
                self.last_action = Some(now);
                return None;
            }
        }
        self.last_edges = Some(edges.clone());
        self.last_action = Some(now);
        Some(match self.cfg.axis {
            AdaptiveAxis::Velocity { .. } => Arc::new(VelocityBoundsPolicy::new(edges)),
            AdaptiveAxis::Space { reach, .. } => Arc::new(SpatialBoundsPolicy::new(edges, reach)),
        })
    }

    /// Drops edges that bound (near-)empty parts, merging each empty
    /// part into its left neighbor, as long as at least `min_k` shards
    /// remain; otherwise the original edges stand. An empty shard is
    /// not free — it still owns a full row and column of shard-pair
    /// engines in the fan-out, and every update replicates into that
    /// row or column — so when the churn-aware edges reveal that the
    /// distribution has fewer clusters than `desired_k` (several edges
    /// landing in the same inter-cluster gap), the controller shrinks
    /// the shard count to the cluster count instead of shipping dead
    /// shards. This is the telemetry-driven merge path that needs no
    /// `target_shard_population`.
    fn merge_empty_parts(&self, edges: Vec<f64>) -> Vec<f64> {
        let total = self.sketch.weight();
        if total == 0 {
            return edges;
        }
        // A part carrying under ~1%/k of the decayed mass is sketch
        // noise, not a cluster worth a dedicated shard.
        let eps = (total as f64 * 0.01 / (edges.len() + 1) as f64).max(1.0);
        let mut merged: Vec<f64> = Vec::with_capacity(edges.len());
        let mut prev = 0.0f64;
        for e in edges.iter().copied() {
            if self.sketch.mass_between(prev, e) as f64 > eps {
                merged.push(e);
            } else if let Some(last) = merged.last_mut() {
                // Empty part [prev, e): slide the previous edge up to
                // `e`, folding the span into the part on its left.
                *last = e;
            }
            // (An empty *leading* part simply drops its right edge,
            // folding into the part that follows.)
            prev = e;
        }
        if self.sketch.mass_between(prev, f64::INFINITY) as f64 <= eps {
            merged.pop(); // empty trailing part folds leftward
        }
        if !merged.is_empty() && merged.len() + 1 >= self.cfg.min_k {
            merged
        } else {
            edges
        }
    }

    /// Tells the controller its last proposal was committed: decays the
    /// sketch so the next decision weighs fresh observations, and
    /// anchors the cooldown at `now`.
    pub fn note_rebalanced(&mut self, now: Time) {
        self.sketch.halve();
        self.last_action = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use cij_geom::Rect;

    use super::*;

    fn rigid(x: f64, v: f64) -> MovingRect {
        MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [v, 0.0], 0.0)
    }

    fn skewed_controller() -> AdaptiveController {
        let mut c = AdaptiveController::new(AdaptiveConfig::velocity(3.0));
        // VelocitySkew shape: 80% slow in [0, 0.9), 20% fast in [2.1, 3).
        for i in 0..400 {
            c.observe(&rigid(0.0, 0.9 * (i as f64 / 400.0)));
        }
        for i in 0..100 {
            c.observe(&rigid(0.0, 2.1 + 0.9 * (i as f64 / 100.0)));
        }
        c
    }

    #[test]
    fn balanced_population_stands_pat() {
        let mut c = skewed_controller();
        assert!(c.decide(5.0, &[100, 100, 100, 100]).is_none());
    }

    #[test]
    fn imbalance_triggers_churn_aware_boundaries() {
        let mut c = skewed_controller();
        let policy = c
            .decide(5.0, &[646, 154, 31, 169])
            .expect("imbalance 646/250 > 2 must trigger");
        // Under the 80/20 two-cluster skew the churn-aware objective
        // puts every candidate edge inside the empty (0.9, 2.1) gap;
        // the empty parts between them merge away, so the proposal is
        // the distribution's true cluster count: two shards, slow and
        // fast, with the single surviving edge in the gap where no
        // re-steer ever crosses it.
        assert_eq!(policy.shard_count(), 2);
        assert_eq!(policy.name(), "velocity-bounds");
        let dyn_any: Arc<dyn PartitionPolicy> = policy;
        for v in [0.05, 0.6, 0.89] {
            assert_eq!(
                dyn_any.shard_of(cij_tpr::ObjectId(1), &rigid(0.0, v)),
                0,
                "slow speed {v} cut away from its cluster"
            );
        }
        for v in [2.11, 2.5, 2.9] {
            assert_eq!(
                dyn_any.shard_of(cij_tpr::ObjectId(1), &rigid(0.0, v)),
                1,
                "fast speed {v} cut away from its cluster"
            );
        }
    }

    #[test]
    fn cooldown_and_no_op_proposals_back_off() {
        let imbalanced = [646, 154, 31, 169];
        let mut c = skewed_controller();
        // A proposal anchors the cooldown by itself.
        assert!(c.decide(5.0, &imbalanced).is_some());
        assert!(c.decide(9.0, &imbalanced).is_none(), "cooldown");
        // Past the cooldown with an unchanged sketch the same edges
        // come back — skipped as a no-op, and the skip re-arms the
        // cooldown (an imbalance the axis cannot fix must not retry
        // every batch).
        assert!(c.decide(20.0, &imbalanced).is_none(), "no-op skip");
        assert!(c.decide(21.0, &imbalanced).is_none(), "re-armed");
    }

    #[test]
    fn target_population_drives_split_and_merge() {
        let mut cfg = AdaptiveConfig::velocity(3.0);
        cfg.target_shard_population = Some(250);
        cfg.min_weight = 10;
        let mut c = AdaptiveController::new(cfg);
        // Several passes so each sketch bucket holds > 1 observation
        // and the post-rebalance halving keeps the distribution (a
        // single-pass sketch of all-1 counts halves to empty — live
        // runs re-feed it from every routed update).
        for _ in 0..4 {
            for i in 0..100 {
                c.observe(&rigid(0.0, 3.0 * (i as f64 / 100.0)));
            }
        }
        // 1000 objects over K=2, target 250 → split to 4.
        let p = c.decide(0.0, &[500, 500]).expect("split");
        assert_eq!(p.shard_count(), 4);
        c.note_rebalanced(0.0);
        // 400 objects over K=4, target 250 → merge to 2 (after cooldown).
        let p = c.decide(20.0, &[100, 100, 100, 100]).expect("merge");
        assert_eq!(p.shard_count(), 2);
    }

    #[test]
    fn min_weight_gates_decisions() {
        let mut c = AdaptiveController::new(AdaptiveConfig::velocity(3.0));
        for _ in 0..10 {
            c.observe(&rigid(0.0, 1.0));
        }
        assert!(c.weight() < 64);
        assert!(c.decide(5.0, &[900, 10, 10, 10]).is_none());
    }
}
