//! Aggregated diagnostics for a sharded run: per-pair traversal
//! counters and cache activity, merged totals, shard populations, and
//! the shared pool's I/O snapshot — one report in the shape the bench
//! harness and the `shard_demo` example print.

use cij_join::JoinCounters;
use cij_obs::MetricsSnapshot;
use cij_storage::{CacheSnapshot, IoSnapshot};

/// Diagnostics of one shard-pair engine.
#[derive(Debug, Clone, Copy)]
pub struct PairReport {
    /// A-side shard index.
    pub shard_a: usize,
    /// B-side shard index.
    pub shard_b: usize,
    /// The engine's accumulated traversal counters.
    pub counters: JoinCounters,
    /// The engine's decoded-node-cache totals (`None` when it runs
    /// without a cache).
    pub cache: Option<CacheSnapshot>,
}

/// Aggregated state of a [`ShardCoordinator`](crate::ShardCoordinator).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Partition policy name.
    pub policy: &'static str,
    /// Shards per object set.
    pub k: usize,
    /// Coordinator fan-out width.
    pub threads: usize,
    /// Cross-shard migrations routed so far (update-driven).
    pub migrations: u64,
    /// Re-partition events committed so far.
    pub rebalances: u64,
    /// Objects relocated by re-partitioning so far (policy-driven,
    /// counted separately from `migrations`).
    pub rebalance_moved: u64,
    /// A-side objects per shard.
    pub population_a: Vec<usize>,
    /// B-side objects per shard.
    pub population_b: Vec<usize>,
    /// One entry per shard-pair engine, in (shard_a, shard_b) order.
    pub pairs: Vec<PairReport>,
    /// Cumulative I/O of the shared buffer pool.
    pub io: IoSnapshot,
    /// Published snapshot of the coordinator's metrics registry —
    /// `None` when metrics are disabled in the engine config.
    pub metrics: Option<MetricsSnapshot>,
}

impl ShardReport {
    /// Number of shard-pair engines in the join plan (≤ K², strictly
    /// less when the policy prunes pairs).
    #[must_use]
    pub fn engine_count(&self) -> usize {
        self.pairs.len()
    }

    /// Traversal counters summed over every shard-pair engine.
    #[must_use]
    pub fn total_counters(&self) -> JoinCounters {
        self.pairs
            .iter()
            .fold(JoinCounters::new(), |acc, p| acc.merged(p.counters))
    }

    /// Decoded-node-cache totals merged over every engine that has one.
    #[must_use]
    pub fn total_cache(&self) -> Option<CacheSnapshot> {
        self.pairs.iter().fold(None, |acc, p| match (acc, p.cache) {
            (Some(x), Some(y)) => Some(x.merged(&y)),
            (x, None) => x,
            (None, y) => y,
        })
    }
}

impl std::fmt::Display for ShardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "policy={} K={} threads={} engines={} migrations={} rebalances={} rebalanced={}",
            self.policy,
            self.k,
            self.threads,
            self.engine_count(),
            self.migrations,
            self.rebalances,
            self.rebalance_moved
        )?;
        writeln!(
            f,
            "population A={:?} B={:?}",
            self.population_a, self.population_b
        )?;
        for p in &self.pairs {
            write!(
                f,
                "  pair ({}, {}): node_pairs={} emitted={}",
                p.shard_a, p.shard_b, p.counters.node_pairs, p.counters.pairs_emitted
            )?;
            match p.cache {
                Some(c) => writeln!(f, " cache_hits={} cache_misses={}", c.hits, c.misses)?,
                None => writeln!(f)?,
            }
        }
        let totals = self.total_counters();
        writeln!(
            f,
            "totals: node_pairs={} comparisons={} emitted={}",
            totals.node_pairs, totals.entry_comparisons, totals.pairs_emitted
        )?;
        write!(
            f,
            "pool I/O: logical_reads={} physical={} hit_ratio={}",
            self.io.logical_reads,
            self.io.physical_total(),
            self.io
                .hit_ratio()
                .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}"))
        )
    }
}
