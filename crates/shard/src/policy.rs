//! Partition policies: how objects map to shards and which shard pairs
//! can ever produce a result.
//!
//! A policy answers two questions the coordinator asks:
//!
//! 1. [`shard_of`](PartitionPolicy::shard_of) — which of the `K` shards
//!    owns an object, given its current trajectory. Placement may depend
//!    on the trajectory (velocity bands, spatial strips), so an update
//!    can *migrate* an object; the [`ShardRouter`](crate::ShardRouter)
//!    turns that into a delete-from-old + insert-into-new pair.
//! 2. [`joinable`](PartitionPolicy::joinable) — whether shard pair
//!    `(i, j)` can ever contribute a result pair at an observable time.
//!    The coordinator only builds engines for joinable pairs (the
//!    cross-shard join plan).
//!
//! Velocity bands follow "Boosting Moving Object Indexing through
//! Velocity Partitioning" (arXiv:1205.6697): grouping objects by speed
//! keeps each TPR-tree's velocity bounding rectangles tight, which is
//! exactly the dead space that inflates time-parameterized MBRs on a
//! mixed population.

use cij_geom::MovingRect;
use cij_tpr::ObjectId;

/// Maps objects to shards and prunes the shard-pair join plan.
///
/// Implementations must be pure functions of their configuration and the
/// arguments (the coordinator calls them from multiple threads and
/// replays them during recovery).
pub trait PartitionPolicy: Send + Sync {
    /// Policy name for reports and bench output.
    fn name(&self) -> &'static str;

    /// Number of shards `K` per object set.
    fn shard_count(&self) -> usize;

    /// The shard owning an object with trajectory `mbr`. Must be
    /// `< shard_count()`.
    fn shard_of(&self, id: ObjectId, mbr: &MovingRect) -> usize;

    /// Whether A-shard `shard_a` and B-shard `shard_b` can ever produce
    /// an observable result pair. The default keeps every pair — always
    /// sound. Policies that prune must guarantee objects of non-joinable
    /// shards cannot intersect at any time the answer is read (see
    /// [`SpatialGridPolicy`] for the drift argument).
    fn joinable(&self, _shard_a: usize, _shard_b: usize) -> bool {
        true
    }
}

/// Trajectory-independent placement by object id — the neutral baseline:
/// shards get a uniform random mix of velocities, so per-shard trees are
/// as loose as the unsharded one. Never migrates (ids do not change).
#[derive(Debug, Clone, Copy)]
pub struct HashPolicy {
    k: usize,
}

impl HashPolicy {
    /// A hash policy over `k ≥ 1` shards.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        Self { k }
    }
}

impl PartitionPolicy for HashPolicy {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn shard_count(&self) -> usize {
        self.k
    }

    fn shard_of(&self, id: ObjectId, _mbr: &MovingRect) -> usize {
        // Fibonacci multiplicative hash: spreads the dense sequential ids
        // of both sets (A at 0.., B at 2^32..) uniformly.
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.k
    }
}

/// Placement by velocity magnitude: band `⌊|v| / max_speed · K⌋`
/// (clamped). Slow objects share trees whose velocity rectangles stay
/// tight; the fast minority pays its own expansion. Objects migrate when
/// a trajectory update crosses a band boundary.
#[derive(Debug, Clone, Copy)]
pub struct VelocityBandPolicy {
    k: usize,
    max_speed: f64,
}

impl VelocityBandPolicy {
    /// `k ≥ 1` equal-width speed bands over `[0, max_speed]`. Speeds
    /// above `max_speed` (not produced by the workloads) clamp into the
    /// top band.
    #[must_use]
    pub fn new(k: usize, max_speed: f64) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        assert!(max_speed >= 0.0, "max_speed must be non-negative");
        Self { k, max_speed }
    }

    /// The band of a given speed.
    #[must_use]
    pub fn band_of_speed(&self, speed: f64) -> usize {
        if self.max_speed <= 0.0 {
            return 0;
        }
        let band = (speed / self.max_speed * self.k as f64).floor() as usize;
        band.min(self.k - 1)
    }
}

impl PartitionPolicy for VelocityBandPolicy {
    fn name(&self) -> &'static str {
        "velocity-band"
    }

    fn shard_count(&self) -> usize {
        self.k
    }

    fn shard_of(&self, _id: ObjectId, mbr: &MovingRect) -> usize {
        // Workload objects are rigid (vlo == vhi); for a non-rigid rect
        // the lower-corner velocity still gives a consistent, stable key.
        let speed = (mbr.vlo[0].powi(2) + mbr.vlo[1].powi(2)).sqrt();
        self.band_of_speed(speed)
    }
}

/// Placement by position: `K` equal x-strips of the space. Strips (not a
/// 2-D grid) because with small `K` every 2-D cell touches every other
/// once expanded by the drift reach, while strips separate at `K ≥ 3` —
/// so the join plan actually prunes.
///
/// Pruning soundness: a result pair observed at tick `t` was derived
/// from trajectories registered at most `T_M` before `t` (every object
/// re-registers within `T_M`, and each re-registration re-derives its
/// pairs). Each object's x-center therefore drifted at most
/// `max_speed · T_M` from the strip that placed it, and overlapping
/// rectangles put the two centers within one object extent of each
/// other. Two strips farther apart than `2·max_speed·T_M + extent` can
/// never meet those conditions; [`SpatialGridPolicy::for_horizon`] adds
/// one more extent of slack on top of that bound.
#[derive(Debug, Clone, Copy)]
pub struct SpatialGridPolicy {
    k: usize,
    space: f64,
    reach: f64,
}

impl SpatialGridPolicy {
    /// `k ≥ 1` strips over `[0, space]`, pruning shard pairs whose
    /// strips are farther than `reach` apart. `reach` must dominate the
    /// drift argument above — prefer [`Self::for_horizon`].
    #[must_use]
    pub fn new(k: usize, space: f64, reach: f64) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        assert!(space > 0.0, "space must be positive");
        assert!(reach >= 0.0, "reach must be non-negative");
        Self { k, space, reach }
    }

    /// Strips with the safe reach `2·max_speed·t_m + 2·extent` for a
    /// workload whose objects re-register within `t_m`, move at most
    /// `max_speed`, and have sides at most `extent`.
    #[must_use]
    pub fn for_horizon(k: usize, space: f64, max_speed: f64, t_m: f64, extent: f64) -> Self {
        Self::new(k, space, 2.0 * max_speed * t_m + 2.0 * extent)
    }

    fn strip_width(&self) -> f64 {
        self.space / self.k as f64
    }
}

impl PartitionPolicy for SpatialGridPolicy {
    fn name(&self) -> &'static str {
        "spatial-grid"
    }

    fn shard_count(&self) -> usize {
        self.k
    }

    fn shard_of(&self, _id: ObjectId, mbr: &MovingRect) -> usize {
        let cx = (mbr.lo[0] + mbr.hi[0]) / 2.0;
        let strip = (cx.clamp(0.0, self.space) / self.strip_width()).floor() as usize;
        strip.min(self.k - 1)
    }

    fn joinable(&self, shard_a: usize, shard_b: usize) -> bool {
        let w = self.strip_width();
        let (lo, hi) = if shard_a <= shard_b {
            (shard_a, shard_b)
        } else {
            (shard_b, shard_a)
        };
        // Gap between the strips' x-intervals.
        let gap = (hi - lo) as f64 * w - w;
        gap <= self.reach
    }
}

#[cfg(test)]
mod tests {
    use cij_geom::Rect;

    use super::*;

    fn rect_at(x: f64, v: [f64; 2]) -> MovingRect {
        MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), v, 0.0)
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        let p = HashPolicy::new(4);
        for raw in [0u64, 1, 17, 1 << 32, (1 << 32) + 3] {
            let s = p.shard_of(ObjectId(raw), &rect_at(0.0, [0.0, 0.0]));
            assert!(s < 4);
            assert_eq!(s, p.shard_of(ObjectId(raw), &rect_at(500.0, [3.0, 0.0])));
        }
        // All shards populated over a dense id range.
        let mut seen = [false; 4];
        for raw in 0..64u64 {
            seen[p.shard_of(ObjectId(raw), &rect_at(0.0, [0.0, 0.0]))] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash leaves a shard empty");
    }

    #[test]
    fn velocity_bands_split_at_speed_boundaries() {
        let p = VelocityBandPolicy::new(4, 4.0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [0.5, 0.0])), 0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [1.5, 0.0])), 1);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [0.0, 2.5])), 2);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [3.9, 0.0])), 3);
        // Clamped at and above max speed.
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [4.0, 0.0])), 3);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [9.0, 0.0])), 3);
        // Degenerate max speed: everyone in band 0.
        let z = VelocityBandPolicy::new(3, 0.0);
        assert_eq!(z.shard_of(ObjectId(1), &rect_at(0.0, [0.0, 0.0])), 0);
    }

    #[test]
    fn spatial_strips_place_by_center_and_prune_far_pairs() {
        let p = SpatialGridPolicy::new(4, 2000.0, 22.0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(10.0, [0.0, 0.0])), 0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(700.0, [0.0, 0.0])), 1);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(1999.0, [0.0, 0.0])), 3);
        // Adjacent strips joinable, strips two apart pruned.
        assert!(p.joinable(0, 0));
        assert!(p.joinable(0, 1) && p.joinable(1, 0));
        assert!(!p.joinable(0, 2));
        assert!(!p.joinable(3, 0));
        // A huge reach keeps every pair.
        let all = SpatialGridPolicy::new(4, 2000.0, 5000.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!(all.joinable(i, j));
            }
        }
    }
}
