//! Partition policies: how objects map to shards and which shard pairs
//! can ever produce a result.
//!
//! A policy answers two questions the coordinator asks:
//!
//! 1. [`shard_of`](PartitionPolicy::shard_of) — which of the `K` shards
//!    owns an object, given its current trajectory. Placement may depend
//!    on the trajectory (velocity bands, spatial strips), so an update
//!    can *migrate* an object; the [`ShardRouter`](crate::ShardRouter)
//!    turns that into a delete-from-old + insert-into-new pair.
//! 2. [`joinable`](PartitionPolicy::joinable) — whether shard pair
//!    `(i, j)` can ever contribute a result pair at an observable time.
//!    The coordinator only builds engines for joinable pairs (the
//!    cross-shard join plan).
//!
//! Velocity bands follow "Boosting Moving Object Indexing through
//! Velocity Partitioning" (arXiv:1205.6697): grouping objects by speed
//! keeps each TPR-tree's velocity bounding rectangles tight, which is
//! exactly the dead space that inflates time-parameterized MBRs on a
//! mixed population.
//!
//! # Boundary discipline
//!
//! Placement must be *reproducible*: the router re-evaluates
//! `shard_of` on every update and during re-partitioning, and recovery
//! replays it — a value sitting exactly on a partition boundary must
//! land in the same shard every single time, under every equivalent
//! formulation of the boundaries. Every policy here therefore stores
//! its boundaries as **explicit precomputed values** and classifies by
//! direct comparison (`partition_point` over ascending edges, with
//! boundary-exact values going to the upper side), never by re-deriving
//! the edge arithmetically per call: `(speed / max_speed * k).floor()`
//! can round a boundary-exact speed to either side depending on how
//! `max_speed / k` rounds, which would disagree with an adaptive
//! bounds policy carrying the numerically identical edges (the same
//! exact-tie class of bug the simjoin inflation padding fixed).

use cij_geom::MovingRect;
use cij_tpr::ObjectId;

/// Maps objects to shards and prunes the shard-pair join plan.
///
/// Implementations must be pure functions of their configuration and the
/// arguments (the coordinator calls them from multiple threads and
/// replays them during recovery).
pub trait PartitionPolicy: Send + Sync {
    /// Policy name for reports and bench output.
    fn name(&self) -> &'static str;

    /// Number of shards `K` per object set.
    fn shard_count(&self) -> usize;

    /// The shard owning an object with trajectory `mbr`. Must be
    /// `< shard_count()`.
    fn shard_of(&self, id: ObjectId, mbr: &MovingRect) -> usize;

    /// Whether A-shard `shard_a` and B-shard `shard_b` can ever produce
    /// an observable result pair. The default keeps every pair — always
    /// sound. Policies that prune must guarantee objects of non-joinable
    /// shards cannot intersect at any time the answer is read (see
    /// [`SpatialGridPolicy`] for the drift argument).
    fn joinable(&self, _shard_a: usize, _shard_b: usize) -> bool {
        true
    }
}

/// The speed key every velocity policy bands on: the faster of the two
/// corner velocities. Workload rectangles are rigid (`vlo == vhi`), but
/// for a non-rigid rect the corners can straddle a band boundary — the
/// worst corner is the one whose expansion actually dominates the
/// tree's velocity bounding rectangle, and keying on it keeps placement
/// and the migration re-check in agreement (keying on `vlo` alone let
/// them disagree).
#[must_use]
pub fn worst_corner_speed(mbr: &MovingRect) -> f64 {
    let lo = (mbr.vlo[0].powi(2) + mbr.vlo[1].powi(2)).sqrt();
    let hi = (mbr.vhi[0].powi(2) + mbr.vhi[1].powi(2)).sqrt();
    lo.max(hi)
}

/// Classifies `value` against ascending band edges: the number of edges
/// `≤ value`, so a value exactly on an edge deterministically takes the
/// upper band. One comparison discipline shared by every banded policy.
fn band_of(edges: &[f64], value: f64) -> usize {
    edges.partition_point(|&e| e <= value)
}

/// Trajectory-independent placement by object id — the neutral baseline:
/// shards get a uniform random mix of velocities, so per-shard trees are
/// as loose as the unsharded one. Never migrates (ids do not change).
#[derive(Debug, Clone, Copy)]
pub struct HashPolicy {
    k: usize,
}

impl HashPolicy {
    /// A hash policy over `k ≥ 1` shards.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        Self { k }
    }
}

impl PartitionPolicy for HashPolicy {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn shard_count(&self) -> usize {
        self.k
    }

    fn shard_of(&self, id: ObjectId, _mbr: &MovingRect) -> usize {
        // Fibonacci multiplicative hash: spreads the dense sequential ids
        // of both sets (A at 0.., B at 2^32..) uniformly.
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.k
    }
}

/// Placement by velocity magnitude into `K` equal-width speed bands
/// over `[0, max_speed]`. Slow objects share trees whose velocity
/// rectangles stay tight; the fast minority pays its own expansion.
/// Objects migrate when a trajectory update crosses a band boundary.
///
/// Band edges are precomputed at construction and classified by direct
/// comparison (see the module docs); speeds at or above `max_speed`
/// clamp into the top band because only `k - 1` interior edges exist.
#[derive(Debug, Clone)]
pub struct VelocityBandPolicy {
    k: usize,
    max_speed: f64,
    /// Ascending interior edges: `edges[i] = max_speed · (i+1) / k`,
    /// the lower edge of band `i + 1`. Empty when `max_speed == 0`
    /// (degenerate: everyone in band 0).
    edges: Vec<f64>,
}

impl VelocityBandPolicy {
    /// `k ≥ 1` equal-width speed bands over `[0, max_speed]`.
    #[must_use]
    pub fn new(k: usize, max_speed: f64) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        assert!(max_speed >= 0.0, "max_speed must be non-negative");
        let edges = if max_speed > 0.0 {
            (1..k).map(|i| max_speed * i as f64 / k as f64).collect()
        } else {
            Vec::new()
        };
        Self {
            k,
            max_speed,
            edges,
        }
    }

    /// The band of a given speed.
    #[must_use]
    pub fn band_of_speed(&self, speed: f64) -> usize {
        band_of(&self.edges, speed)
    }

    /// The precomputed interior band edges (ascending, `k - 1` values —
    /// the exact floats placement compares against).
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.edges
    }

    /// The `max_speed` the equal-width edges were derived from.
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }
}

impl PartitionPolicy for VelocityBandPolicy {
    fn name(&self) -> &'static str {
        "velocity-band"
    }

    fn shard_count(&self) -> usize {
        self.k
    }

    fn shard_of(&self, _id: ObjectId, mbr: &MovingRect) -> usize {
        self.band_of_speed(worst_corner_speed(mbr))
    }
}

/// Velocity banding over *explicit* edges — the shape the adaptive
/// controller emits: edges are observed speed quantiles, so each band
/// holds an equal share of the population instead of an equal share of
/// the speed range. Classification is the same direct comparison as
/// [`VelocityBandPolicy`]; a policy built from numerically identical
/// edges places every object identically.
#[derive(Debug, Clone)]
pub struct VelocityBoundsPolicy {
    edges: Vec<f64>,
}

impl VelocityBoundsPolicy {
    /// A policy over `edges.len() + 1` bands split at the given
    /// ascending interior edges.
    ///
    /// # Panics
    /// If any edge is non-finite or the sequence is not non-decreasing.
    #[must_use]
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "band edges must be finite"
        );
        assert!(
            edges.windows(2).all(|w| w[0] <= w[1]),
            "band edges must be ascending"
        );
        Self { edges }
    }

    /// The interior band edges.
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.edges
    }
}

impl PartitionPolicy for VelocityBoundsPolicy {
    fn name(&self) -> &'static str {
        "velocity-bounds"
    }

    fn shard_count(&self) -> usize {
        self.edges.len() + 1
    }

    fn shard_of(&self, _id: ObjectId, mbr: &MovingRect) -> usize {
        band_of(&self.edges, worst_corner_speed(mbr))
    }
}

/// Placement by position: `K` equal x-strips of the space. Strips (not a
/// 2-D grid) because with small `K` every 2-D cell touches every other
/// once expanded by the drift reach, while strips separate at `K ≥ 3` —
/// so the join plan actually prunes.
///
/// Pruning soundness: a result pair observed at tick `t` was derived
/// from trajectories registered at most `T_M` before `t` (every object
/// re-registers within `T_M`, and each re-registration re-derives its
/// pairs). Each object's x-center therefore drifted at most
/// `max_speed · T_M` from the strip that placed it, and overlapping
/// rectangles put the two centers within one object extent of each
/// other. Two strips farther apart than `2·max_speed·T_M + extent` can
/// never meet those conditions; [`SpatialGridPolicy::for_horizon`] adds
/// one more extent of slack on top of that bound.
#[derive(Debug, Clone)]
pub struct SpatialGridPolicy {
    k: usize,
    space: f64,
    reach: f64,
    /// Ascending interior strip edges `space · (i+1) / k` — strip `i`
    /// ends at `edges[i]`.
    edges: Vec<f64>,
}

impl SpatialGridPolicy {
    /// `k ≥ 1` strips over `[0, space]`, pruning shard pairs whose
    /// strips are farther than `reach` apart. `reach` must dominate the
    /// drift argument above — prefer [`Self::for_horizon`].
    #[must_use]
    pub fn new(k: usize, space: f64, reach: f64) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        assert!(space > 0.0, "space must be positive");
        assert!(reach >= 0.0, "reach must be non-negative");
        let edges = (1..k).map(|i| space * i as f64 / k as f64).collect();
        Self {
            k,
            space,
            reach,
            edges,
        }
    }

    /// Strips with the safe reach `2·max_speed·t_m + 2·extent` for a
    /// workload whose objects re-register within `t_m`, move at most
    /// `max_speed`, and have sides at most `extent`.
    #[must_use]
    pub fn for_horizon(k: usize, space: f64, max_speed: f64, t_m: f64, extent: f64) -> Self {
        Self::new(k, space, 2.0 * max_speed * t_m + 2.0 * extent)
    }

    /// The interior strip edges.
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.edges
    }

    /// The pruning reach.
    #[must_use]
    pub fn reach(&self) -> f64 {
        self.reach
    }
}

impl PartitionPolicy for SpatialGridPolicy {
    fn name(&self) -> &'static str {
        "spatial-grid"
    }

    fn shard_count(&self) -> usize {
        self.k
    }

    fn shard_of(&self, _id: ObjectId, mbr: &MovingRect) -> usize {
        let cx = (mbr.lo[0] + mbr.hi[0]) / 2.0;
        band_of(&self.edges, cx.clamp(0.0, self.space))
    }

    fn joinable(&self, shard_a: usize, shard_b: usize) -> bool {
        strip_gap(&self.edges, shard_a, shard_b) <= self.reach
    }
}

/// The gap between the x-intervals of strips `a` and `b` under the
/// given interior edges (0 for the same or adjacent strips): strip `j`
/// starts at `edges[j-1]` and strip `i` ends at `edges[i]`.
fn strip_gap(edges: &[f64], a: usize, b: usize) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if hi - lo <= 1 {
        return 0.0;
    }
    edges[hi - 1] - edges[lo]
}

/// Spatial strips over *explicit* edges — the adaptive controller's
/// spatial shape: edges are observed x-center quantiles, so dense
/// regions get narrow strips. Keeps [`SpatialGridPolicy`]'s reach-based
/// join-plan pruning, computed from the actual (uneven) strip gaps, so
/// the drift soundness argument carries over verbatim: `reach` must
/// still dominate `2·max_speed·T_M + 2·extent`.
#[derive(Debug, Clone)]
pub struct SpatialBoundsPolicy {
    edges: Vec<f64>,
    reach: f64,
}

impl SpatialBoundsPolicy {
    /// A policy over `edges.len() + 1` strips split at the given
    /// ascending interior edges, pruning pairs whose strips are farther
    /// than `reach` apart.
    ///
    /// # Panics
    /// If any edge is non-finite, the sequence is not non-decreasing,
    /// or `reach` is negative.
    #[must_use]
    pub fn new(edges: Vec<f64>, reach: f64) -> Self {
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "strip edges must be finite"
        );
        assert!(
            edges.windows(2).all(|w| w[0] <= w[1]),
            "strip edges must be ascending"
        );
        assert!(reach >= 0.0, "reach must be non-negative");
        Self { edges, reach }
    }

    /// The interior strip edges.
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.edges
    }

    /// The pruning reach.
    #[must_use]
    pub fn reach(&self) -> f64 {
        self.reach
    }
}

impl PartitionPolicy for SpatialBoundsPolicy {
    fn name(&self) -> &'static str {
        "spatial-bounds"
    }

    fn shard_count(&self) -> usize {
        self.edges.len() + 1
    }

    fn shard_of(&self, _id: ObjectId, mbr: &MovingRect) -> usize {
        let cx = (mbr.lo[0] + mbr.hi[0]) / 2.0;
        band_of(&self.edges, cx)
    }

    fn joinable(&self, shard_a: usize, shard_b: usize) -> bool {
        strip_gap(&self.edges, shard_a, shard_b) <= self.reach
    }
}

#[cfg(test)]
mod tests {
    use cij_geom::Rect;

    use super::*;

    fn rect_at(x: f64, v: [f64; 2]) -> MovingRect {
        MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), v, 0.0)
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        let p = HashPolicy::new(4);
        for raw in [0u64, 1, 17, 1 << 32, (1 << 32) + 3] {
            let s = p.shard_of(ObjectId(raw), &rect_at(0.0, [0.0, 0.0]));
            assert!(s < 4);
            assert_eq!(s, p.shard_of(ObjectId(raw), &rect_at(500.0, [3.0, 0.0])));
        }
        // All shards populated over a dense id range.
        let mut seen = [false; 4];
        for raw in 0..64u64 {
            seen[p.shard_of(ObjectId(raw), &rect_at(0.0, [0.0, 0.0]))] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash leaves a shard empty");
    }

    #[test]
    fn velocity_bands_split_at_speed_boundaries() {
        let p = VelocityBandPolicy::new(4, 4.0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [0.5, 0.0])), 0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [1.5, 0.0])), 1);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [0.0, 2.5])), 2);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [3.9, 0.0])), 3);
        // Clamped at and above max speed.
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [4.0, 0.0])), 3);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [9.0, 0.0])), 3);
        // Degenerate max speed: everyone in band 0.
        let z = VelocityBandPolicy::new(3, 0.0);
        assert_eq!(z.shard_of(ObjectId(1), &rect_at(0.0, [0.0, 0.0])), 0);
    }

    /// Regression (satellite: non-rigid banding): placement must key on
    /// the *worst* corner speed. With the old `vlo`-only key, a rect
    /// whose lower corner crawls while the upper corner races landed in
    /// band 0 — and any consumer re-deriving the band from the true
    /// velocity extent disagreed with the router's placement.
    #[test]
    fn non_rigid_rects_band_on_worst_corner() {
        let p = VelocityBandPolicy::new(4, 4.0);
        let mut mbr = rect_at(0.0, [0.1, 0.0]);
        mbr.vhi = [3.9, 0.0]; // upper corner near top speed
        assert_eq!(worst_corner_speed(&mbr), 3.9);
        assert_eq!(p.shard_of(ObjectId(1), &mbr), 3, "must band on vhi");
        // Symmetric: the lower corner can be the fast one (shrinking
        // rect) — still the worst corner.
        let mut shrink = rect_at(0.0, [-3.9, 0.0]);
        shrink.vhi = [0.1, 0.0];
        assert_eq!(p.shard_of(ObjectId(1), &shrink), 3);
        // Rigid rects are unchanged by the fix.
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [1.5, 0.0])), 1);
    }

    /// Regression (satellite: boundary float ties): a speed exactly on
    /// a band edge classifies into the upper band, by direct comparison
    /// against the precomputed edge — for every k/max_speed, including
    /// ones where `(speed / max_speed * k).floor()` rounds the other
    /// way (e.g. 0.1 / 0.3 * 3 = 0.999…).
    #[test]
    fn boundary_exact_speeds_take_the_upper_band() {
        for (k, max_speed) in [(3usize, 0.3f64), (4, 4.0), (7, 1.1), (5, 3.0)] {
            let p = VelocityBandPolicy::new(k, max_speed);
            for (i, &edge) in p.boundaries().iter().enumerate() {
                assert_eq!(
                    p.band_of_speed(edge),
                    i + 1,
                    "k={k} max={max_speed}: edge {i} must go up"
                );
                // And an equivalent explicit-bounds policy agrees on the
                // exact edge floats — the invariant a rebalance between
                // the two shapes depends on.
                let q = VelocityBoundsPolicy::new(p.boundaries().to_vec());
                let mbr = rect_at(0.0, [edge, 0.0]);
                assert_eq!(q.shard_of(ObjectId(9), &mbr), p.shard_of(ObjectId(9), &mbr));
            }
        }
    }

    #[test]
    fn velocity_bounds_places_and_prunes_nothing() {
        let p = VelocityBoundsPolicy::new(vec![0.5, 2.0]);
        assert_eq!(p.shard_count(), 3);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [0.4, 0.0])), 0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [0.5, 0.0])), 1);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [1.9, 0.0])), 1);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(0.0, [2.0, 0.0])), 2);
        for i in 0..3 {
            for j in 0..3 {
                assert!(p.joinable(i, j));
            }
        }
    }

    #[test]
    fn spatial_strips_place_by_center_and_prune_far_pairs() {
        let p = SpatialGridPolicy::new(4, 2000.0, 22.0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(10.0, [0.0, 0.0])), 0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(700.0, [0.0, 0.0])), 1);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(1999.0, [0.0, 0.0])), 3);
        // Adjacent strips joinable, strips two apart pruned.
        assert!(p.joinable(0, 0));
        assert!(p.joinable(0, 1) && p.joinable(1, 0));
        assert!(!p.joinable(0, 2));
        assert!(!p.joinable(3, 0));
        // A huge reach keeps every pair.
        let all = SpatialGridPolicy::new(4, 2000.0, 5000.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!(all.joinable(i, j));
            }
        }
    }

    #[test]
    fn spatial_bounds_uneven_strips_gap_by_actual_edges() {
        // Strips: [..,10), [10,20), [20,500), [500,..) — the wide strip
        // 2 keeps strips 1 and 3 adjacent-but-far.
        let p = SpatialBoundsPolicy::new(vec![10.0, 20.0, 500.0], 30.0);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(4.0, [0.0, 0.0])), 0);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(21.0, [0.0, 0.0])), 2);
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(999.0, [0.0, 0.0])), 3);
        // Exact edge goes to the upper strip (center of rect at
        // x=9.5..10.5 is exactly 10).
        assert_eq!(p.shard_of(ObjectId(1), &rect_at(9.5, [0.0, 0.0])), 1);
        // Gaps: (0,2) = 20-10 = 10 ≤ 30 joinable; (0,3) = 500-10 pruned;
        // (1,3) = 500-20 pruned; adjacency always joinable.
        assert!(p.joinable(0, 1) && p.joinable(0, 2) && p.joinable(2, 3));
        assert!(!p.joinable(0, 3) && !p.joinable(3, 1));
    }
}
