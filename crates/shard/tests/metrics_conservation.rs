//! Shard-axis counter conservation: the coordinator's unified
//! [`MetricsSnapshot`] (carried on [`ShardReport::metrics`]) must agree
//! bit-exactly with the legacy report fields — aggregated traversal
//! counters, merged cache totals, shared-pool I/O, migrations, and the
//! per-pair / per-shard breakdowns — at K = 1, 2 and 4. The per-engine ×
//! thread axis of the same guarantee lives in
//! `crates/core/tests/metrics_conservation.rs`.

use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_geom::Time;
use cij_shard::{HashPolicy, ShardCoordinator};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

fn params(seed: u64) -> Params {
    Params {
        dataset_size: 150,
        distribution: Distribution::VelocitySkew,
        seed,
        space: 300.0,
        object_size_pct: 1.0,
        maximum_update_interval: 20.0,
        ..Params::default()
    }
}

#[test]
fn shard_report_metrics_match_legacy_fields_bit_exactly() {
    let p = params(11);
    for k in [1usize, 2, 4] {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(1024),
        );
        let config = EngineConfig {
            t_m: p.maximum_update_interval,
            metrics: true,
            ..EngineConfig::default()
        }
        .to_builder()
        .node_cache_capacity(128)
        .build();
        let (a, b) = generate_pair(&p, 0.0);
        let mut coord = ShardCoordinator::new(
            pool,
            config,
            Arc::new(HashPolicy::new(k)),
            &a,
            &b,
            0.0,
            &|pool, cfg, sa, sb, now| Ok(Box::new(MtbEngine::new(pool, *cfg, sa, sb, now)?)),
        )
        .expect("coordinator");
        coord.run_initial_join(0.0).expect("initial join");
        let mut stream = UpdateStream::new(&p, &a, &b, 0.0);
        for tick in 1..=30u32 {
            let now = Time::from(tick);
            let updates = stream.tick(now);
            coord.advance_time(now).expect("advance");
            coord.apply_batch(&updates, now).expect("batch");
            coord.gc(now);
        }

        let report = coord.report();
        let tag = format!("K={k}");
        let snap = report
            .metrics
            .clone()
            .unwrap_or_else(|| panic!("{tag}: metrics-on coordinator must snapshot"));

        // Aggregated traversal counters.
        let totals = report.total_counters();
        for (name, legacy) in [
            ("join.node_pairs", totals.node_pairs),
            ("join.entry_comparisons", totals.entry_comparisons),
            ("join.ic_pruned", totals.ic_pruned),
            ("join.pairs_emitted", totals.pairs_emitted),
        ] {
            assert_eq!(snap.counter(name), Some(legacy), "{tag}: {name} drifted");
        }

        // Merged decoded-node cache totals.
        let cache = report
            .total_cache()
            .unwrap_or_else(|| panic!("{tag}: cache-on coordinator must report cache totals"));
        for (name, legacy) in [
            ("engine.node_cache.hits", cache.hits),
            ("engine.node_cache.misses", cache.misses),
            ("engine.node_cache.insertions", cache.insertions),
            ("engine.node_cache.evictions", cache.evictions),
            ("engine.node_cache.invalidations", cache.invalidations),
            ("engine.node_cache.stale_rejections", cache.stale_rejections),
        ] {
            assert_eq!(snap.counter(name), Some(legacy), "{tag}: {name} drifted");
        }

        // Shared-pool I/O (live registered views).
        for (name, legacy) in [
            ("storage.pool.physical_reads", report.io.physical_reads),
            ("storage.pool.physical_writes", report.io.physical_writes),
            ("storage.pool.logical_reads", report.io.logical_reads),
            ("storage.pool.logical_writes", report.io.logical_writes),
            ("storage.pool.allocations", report.io.allocations),
            ("storage.pool.frees", report.io.frees),
        ] {
            assert_eq!(snap.counter(name), Some(legacy), "{tag}: {name} drifted");
        }

        // Coordinator telemetry: migrations, shard count, populations.
        assert_eq!(
            snap.counter("shard.migrations"),
            Some(report.migrations),
            "{tag}: migrations drifted"
        );
        assert_eq!(
            snap.gauge("shard.engines"),
            Some(report.engine_count() as i64),
            "{tag}: engine count drifted"
        );
        for (i, (pa, pb)) in report
            .population_a
            .iter()
            .zip(&report.population_b)
            .enumerate()
        {
            assert_eq!(
                snap.gauge(&format!("shard.population.a.{i}")),
                Some(*pa as i64),
                "{tag}: shard {i} population A drifted"
            );
            assert_eq!(
                snap.gauge(&format!("shard.population.b.{i}")),
                Some(*pb as i64),
                "{tag}: shard {i} population B drifted"
            );
        }

        // Per-pair breakdown: one counter pair per shard-pair engine.
        for pr in &report.pairs {
            let prefix = format!("shard.pair.{}_{}", pr.shard_a, pr.shard_b);
            assert_eq!(
                snap.counter(&format!("{prefix}.node_pairs")),
                Some(pr.counters.node_pairs),
                "{tag}: {prefix}.node_pairs drifted"
            );
            assert_eq!(
                snap.counter(&format!("{prefix}.pairs_emitted")),
                Some(pr.counters.pairs_emitted),
                "{tag}: {prefix}.pairs_emitted drifted"
            );
        }

        // The coordinator owns telemetry: no double counting from inner
        // engines (their registries are disabled).
        assert!(
            !coord.metrics_registry().snapshot().is_empty(),
            "{tag}: coordinator registry empty"
        );
    }
}

/// Re-partitioning must keep the metrics view conserved: rebalance
/// counters track the coordinator's own tallies, population gauges sum
/// to the datasets under the *new* K, and names from the retired
/// topology (higher shard indices, dropped pairs) read zero rather than
/// lingering at their last pre-rebalance values.
#[test]
fn rebalance_keeps_metrics_conserved_and_zeroes_stale_names() {
    let p = params(13);
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(1024),
    );
    let config = EngineConfig {
        t_m: p.maximum_update_interval,
        metrics: true,
        ..EngineConfig::default()
    };
    let (a, b) = generate_pair(&p, 0.0);
    let factory: cij_shard::SharedShardEngineFactory =
        Arc::new(|pool, cfg, sa, sb, now| Ok(Box::new(MtbEngine::new(pool, *cfg, sa, sb, now)?)));
    let mut coord = ShardCoordinator::with_factory(
        pool,
        config,
        Arc::new(HashPolicy::new(2)),
        &a,
        &b,
        0.0,
        factory,
    )
    .expect("coordinator");
    coord.run_initial_join(0.0).expect("initial join");

    let mut stream = UpdateStream::new(&p, &a, &b, 0.0);
    let mut run = |coord: &mut ShardCoordinator, from: u32, to: u32| {
        for tick in from..=to {
            let now = Time::from(tick);
            let updates = stream.tick(now);
            coord.advance_time(now).expect("advance");
            coord.apply_batch(&updates, now).expect("batch");
            coord.gc(now);
        }
    };

    run(&mut coord, 1, 10);
    let moved_split = coord
        .rebalance_to(Arc::new(HashPolicy::new(4)), Time::from(10u32))
        .expect("split");
    run(&mut coord, 11, 20);

    let snap = coord.report().metrics.expect("metrics-on snapshot");
    assert_eq!(snap.counter("shard.rebalances"), Some(1));
    assert_eq!(
        snap.counter("shard.rebalance.moved_objects"),
        Some(moved_split as u64)
    );
    let pop = |snap: &cij_obs::MetricsSnapshot, side: char, i: usize| {
        snap.gauge(&format!("shard.population.{side}.{i}"))
            .unwrap_or_else(|| panic!("population.{side}.{i} missing"))
    };
    let total_a: i64 = (0..4).map(|i| pop(&snap, 'a', i)).sum();
    let total_b: i64 = (0..4).map(|i| pop(&snap, 'b', i)).sum();
    assert_eq!(total_a, a.len() as i64);
    assert_eq!(total_b, b.len() as i64);

    let moved_merge = coord
        .rebalance_to(Arc::new(HashPolicy::new(2)), Time::from(20u32))
        .expect("merge");
    run(&mut coord, 21, 30);

    let snap = coord.report().metrics.expect("metrics-on snapshot");
    assert_eq!(snap.counter("shard.rebalances"), Some(2));
    assert_eq!(
        snap.counter("shard.rebalance.moved_objects"),
        Some((moved_split + moved_merge) as u64)
    );
    // Shards 2 and 3 are gone: their gauges must read zero, and the
    // surviving two must again account for every object.
    for i in 2..4 {
        assert_eq!(pop(&snap, 'a', i), 0, "stale shard {i} gauge lingered");
        assert_eq!(pop(&snap, 'b', i), 0, "stale shard {i} gauge lingered");
    }
    assert_eq!(pop(&snap, 'a', 0) + pop(&snap, 'a', 1), a.len() as i64);
    assert_eq!(pop(&snap, 'b', 0) + pop(&snap, 'b', 1), b.len() as i64);
    assert_eq!(snap.gauge("shard.engines"), Some(4));
    // Retired pair counters (any index touching shard 2 or 3) read zero.
    for (i, j) in [(0usize, 2usize), (2, 0), (3, 3), (1, 2)] {
        for metric in ["node_pairs", "pairs_emitted"] {
            if let Some(v) = snap.counter(&format!("shard.pair.{i}_{j}.{metric}")) {
                assert_eq!(v, 0, "stale pair ({i},{j}) {metric} lingered");
            }
        }
    }
}

#[test]
fn metrics_off_coordinator_reports_no_snapshot() {
    let p = params(12);
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(512),
    );
    let config = EngineConfig {
        t_m: p.maximum_update_interval,
        ..EngineConfig::default()
    };
    let (a, b) = generate_pair(&p, 0.0);
    let mut coord = ShardCoordinator::new(
        pool,
        config,
        Arc::new(HashPolicy::new(2)),
        &a,
        &b,
        0.0,
        &|pool, cfg, sa, sb, now| Ok(Box::new(MtbEngine::new(pool, *cfg, sa, sb, now)?)),
    )
    .expect("coordinator");
    coord.run_initial_join(0.0).expect("initial join");
    let report = coord.report();
    assert!(
        report.metrics.is_none(),
        "metrics-off report carried a snapshot"
    );
    assert!(!coord.metrics_registry().is_enabled());
}
