//! The sharding correctness contract: a [`ShardCoordinator`] must be
//! observationally identical to the single engine it decomposes —
//! `result_at` every tick, and the stream-service delta sequence — for
//! every partition policy × K ∈ {1, 2, 4} × coordinator threads ∈
//! {1, 4}, including runs with forced cross-shard migrations, plans
//! with pruned shard pairs, and **forced mid-run re-partitions**
//! (boundary shifts, shard splits, shard merges via
//! [`ShardCoordinator::rebalance_to`]).

use std::collections::BTreeSet;
use std::sync::Arc;

use cij_core::{BxEngine, ContinuousJoinEngine, EngineConfig, MtbEngine, NaiveEngine, TcEngine};
use cij_geom::{MovingRect, Rect, Time};
use cij_shard::{
    HashPolicy, PartitionPolicy, ShardCoordinator, SharedShardEngineFactory, SpatialBoundsPolicy,
    SpatialGridPolicy, VelocityBandPolicy, VelocityBoundsPolicy,
};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_workload::{generate_pair, Distribution, ObjectUpdate, Params, SetTag, UpdateStream};

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    )
}

/// Short T_M so 40 ticks cover two full re-registration rounds, and the
/// velocity-skew mix so the band policy sees both classes.
fn skew_params(seed: u64) -> Params {
    Params {
        dataset_size: 100,
        distribution: Distribution::VelocitySkew,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        maximum_update_interval: 20.0,
        ..Params::default()
    }
}

fn engine_config(params: &Params) -> EngineConfig {
    EngineConfig {
        t_m: params.maximum_update_interval,
        ..EngineConfig::default()
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Naive,
    Tc,
    Mtb,
    Bx,
}

/// One engine builder serves both roles: called directly it builds the
/// single-engine oracle; handed to the coordinator it builds shard-pair
/// engines — including fresh ones mid-run during a rebalance.
fn make_factory(kind: Kind, params: &Params) -> SharedShardEngineFactory {
    let bx = cij_bx::BxConfig {
        t_m: params.maximum_update_interval,
        space: params.space,
        max_speed: params.max_speed,
        max_extent: params.object_side(),
        ..Default::default()
    };
    Arc::new(move |pool, cfg, a, b, now| {
        Ok(match kind {
            Kind::Naive => Box::new(NaiveEngine::new(pool, *cfg, a, b, now)?)
                as Box<dyn ContinuousJoinEngine + Send>,
            Kind::Tc => Box::new(TcEngine::new(pool, *cfg, a, b, now)?),
            Kind::Mtb => Box::new(MtbEngine::new(pool, *cfg, a, b, now)?),
            Kind::Bx => Box::new(BxEngine::new(pool, *cfg, bx, a, b, now)?),
        })
    })
}

/// Runs coordinator and single-engine oracle in lockstep over the same
/// deterministic stream, re-partitioning the coordinator at every
/// `(tick, policy)` of `schedule`, asserting equal answers every tick —
/// including the rebalance ticks themselves — and counter/population
/// conservation at the end. Returns the coordinator for further
/// assertions.
fn run_lockstep_rebalancing(
    kind: Kind,
    initial: Arc<dyn PartitionPolicy>,
    schedule: &[(u32, Arc<dyn PartitionPolicy>)],
    params: &Params,
    threads: usize,
    ticks: u32,
) -> ShardCoordinator {
    let (a, b) = generate_pair(params, 0.0);
    let config = engine_config(params);
    let factory = make_factory(kind, params);
    let mut oracle = factory(pool(), &config, &a, &b, 0.0).expect("oracle");
    let sharded_config = EngineConfig { threads, ..config };
    let mut coord = ShardCoordinator::with_factory(
        pool(),
        sharded_config,
        initial.clone(),
        &a,
        &b,
        0.0,
        factory,
    )
    .expect("coordinator");

    let mut stream = UpdateStream::new(params, &a, &b, 0.0);
    oracle.run_initial_join(0.0).expect("oracle initial");
    coord.run_initial_join(0.0).expect("sharded initial");
    assert_eq!(
        coord.result_at(0.0),
        oracle.result_at(0.0),
        "policy={} K={} threads={threads}: initial join diverged",
        initial.name(),
        initial.shard_count()
    );

    let mut expected_rebalances = 0u64;
    let mut expected_moved = 0u64;
    for tick in 1..=ticks {
        let now = Time::from(tick);
        let updates = stream.tick(now);
        oracle.advance_time(now).expect("oracle advance");
        coord.advance_time(now).expect("sharded advance");
        for u in &updates {
            oracle.apply_update(u, now).expect("oracle update");
        }
        coord.apply_batch(&updates, now).expect("sharded batch");
        oracle.gc(now);
        coord.gc(now);
        if let Some((_, next)) = schedule.iter().find(|(t, _)| *t == tick) {
            let moved = coord
                .rebalance_to(next.clone(), now)
                .expect("forced rebalance");
            expected_rebalances += 1;
            expected_moved += moved as u64;
            assert_eq!(coord.shard_count(), next.shard_count(), "t={now}");
        }
        assert_eq!(
            coord.result_at(now),
            oracle.result_at(now),
            "policy={} K={} threads={threads}: diverged at t={now}",
            initial.name(),
            initial.shard_count()
        );
    }

    // Conservation: every rebalance is counted, every object is still
    // placed in exactly one shard, and the per-shard populations sum
    // back to the datasets.
    assert_eq!(coord.rebalances(), expected_rebalances);
    assert_eq!(coord.rebalance_moved(), expected_moved);
    let report = coord.report();
    assert_eq!(report.rebalances, expected_rebalances);
    assert_eq!(report.rebalance_moved, expected_moved);
    assert_eq!(report.population_a.iter().sum::<usize>(), a.len());
    assert_eq!(report.population_b.iter().sum::<usize>(), b.len());
    coord
}

/// Lockstep without re-partitions — the fixed-policy contract.
fn run_lockstep(
    kind: Kind,
    policy: Arc<dyn PartitionPolicy>,
    params: &Params,
    threads: usize,
    ticks: u32,
) -> ShardCoordinator {
    run_lockstep_rebalancing(kind, policy, &[], params, threads, ticks)
}

#[test]
fn velocity_bands_match_oracle_across_k_and_threads() {
    let params = skew_params(41);
    for k in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let policy = Arc::new(VelocityBandPolicy::new(k, params.max_speed));
            let coord = run_lockstep(Kind::Mtb, policy, &params, threads, 40);
            assert_eq!(coord.engine_count(), k * k);
            if k == 4 {
                // Both skew classes straddle a K=4 band boundary (0.25
                // and 0.75 of max speed), so voluntary re-steers migrate
                // objects as a matter of course. (At K=2 the single
                // boundary at 0.5 sits in the gap between the classes.)
                assert!(
                    coord.migrations() > 0,
                    "K={k}: no cross-shard migrations exercised"
                );
            }
        }
    }
}

#[test]
fn hash_matches_oracle_across_k_and_threads() {
    let params = skew_params(42);
    for k in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let policy = Arc::new(HashPolicy::new(k));
            let coord = run_lockstep(Kind::Mtb, policy, &params, threads, 40);
            assert_eq!(coord.engine_count(), k * k);
            // Id-hash placement never moves an object.
            assert_eq!(coord.migrations(), 0);
        }
    }
}

#[test]
fn spatial_grid_matches_oracle_across_k_and_threads() {
    // Slow movers over a wider space so the strip plan actually prunes:
    // reach = 2·max_speed·T_M + 2·side = 46 < strip width 75 at K = 4.
    let params = Params {
        max_speed: 1.0,
        space: 300.0,
        dataset_size: 150,
        ..skew_params(43)
    };
    let side = params.object_side();
    for k in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let policy = Arc::new(SpatialGridPolicy::for_horizon(
                k,
                params.space,
                params.max_speed,
                params.maximum_update_interval,
                side,
            ));
            let coord = run_lockstep(Kind::Mtb, policy, &params, threads, 40);
            if k == 4 {
                // Strips ≥ 2 apart are out of reach: 16 − 6 pruned = 10.
                assert_eq!(coord.engine_count(), 10, "expected a pruned plan");
                assert!(coord.migrations() > 0, "objects cross strips");
            }
        }
    }
}

#[test]
fn tc_engine_sharded_matches_oracle() {
    let params = skew_params(44);
    let coord = run_lockstep(
        Kind::Tc,
        Arc::new(VelocityBandPolicy::new(4, params.max_speed)),
        &params,
        4,
        30,
    );
    assert!(coord.migrations() > 0);
    run_lockstep(Kind::Tc, Arc::new(HashPolicy::new(2)), &params, 1, 30);
}

#[test]
fn naive_engine_sharded_matches_oracle() {
    let params = skew_params(45);
    run_lockstep(
        Kind::Naive,
        Arc::new(VelocityBandPolicy::new(2, params.max_speed)),
        &params,
        4,
        25,
    );
}

/// Forced re-partitions under the velocity axis: a boundary shift at
/// K = 2, a split to K = 4 (fresh engines for every new row/column),
/// and a merge back to K = 2 (engines dropped, fresh ones fully
/// re-populated) — each × threads {1, 4}, all bit-identical to the
/// oracle every tick.
#[test]
fn velocity_rebalance_shift_split_merge_matches_oracle() {
    let params = skew_params(48);
    for threads in [1usize, 4] {
        let schedule: Vec<(u32, Arc<dyn PartitionPolicy>)> = vec![
            // K=2 boundary shift: 1.5 (equal-width) → 0.9.
            (10, Arc::new(VelocityBoundsPolicy::new(vec![0.9]))),
            // Split: K=2 → K=4 at skew-aware edges.
            (20, Arc::new(VelocityBoundsPolicy::new(vec![0.5, 1.5, 2.4]))),
            // Merge: K=4 → K=2.
            (30, Arc::new(VelocityBoundsPolicy::new(vec![1.2]))),
        ];
        let coord = run_lockstep_rebalancing(
            Kind::Mtb,
            Arc::new(VelocityBandPolicy::new(2, params.max_speed)),
            &schedule,
            &params,
            threads,
            40,
        );
        assert_eq!(coord.rebalances(), 3);
        assert!(coord.rebalance_moved() > 0, "no object ever relocated");
        assert_eq!(coord.shard_count(), 2);
        assert_eq!(coord.engine_count(), 4);
    }
}

/// Forced re-partitions under id-hash placement: K=2 → K=4 → K=2.
/// Hash shards are trajectory-independent, so the movers are exactly
/// the ids whose hash changes modulus — a pure split/merge stress of
/// the evict/rebuild/restore machinery.
#[test]
fn hash_rebalance_split_merge_matches_oracle() {
    let params = skew_params(49);
    for threads in [1usize, 4] {
        let schedule: Vec<(u32, Arc<dyn PartitionPolicy>)> = vec![
            (12, Arc::new(HashPolicy::new(4))),
            (24, Arc::new(HashPolicy::new(2))),
        ];
        let coord = run_lockstep_rebalancing(
            Kind::Mtb,
            Arc::new(HashPolicy::new(2)),
            &schedule,
            &params,
            threads,
            36,
        );
        assert_eq!(coord.rebalances(), 2);
        assert!(coord.rebalance_moved() > 0);
        // Rebalance moves must not be misattributed to update routing.
        assert_eq!(coord.migrations(), 0);
    }
}

/// Forced re-partitions under the spatial axis, with join-plan pruning
/// in play: an uneven boundary shift at K = 2, a split to the pruned
/// K = 4 strip plan (10 of 16 pairs), and a merge back to K = 2 —
/// engines are created *and* dropped by joinability changes, not just
/// by shard-count changes.
#[test]
fn spatial_rebalance_with_pruned_plans_matches_oracle() {
    let params = Params {
        max_speed: 1.0,
        space: 300.0,
        dataset_size: 150,
        ..skew_params(50)
    };
    let side = params.object_side();
    let reach = 2.0 * params.max_speed * params.maximum_update_interval + 2.0 * side;
    for threads in [1usize, 4] {
        let schedule: Vec<(u32, Arc<dyn PartitionPolicy>)> = vec![
            // K=2 uneven boundary shift: 150 → 120.
            (12, Arc::new(SpatialBoundsPolicy::new(vec![120.0], reach))),
            // Split to the pruned equal-width K=4 plan.
            (
                24,
                Arc::new(SpatialGridPolicy::for_horizon(
                    4,
                    params.space,
                    params.max_speed,
                    params.maximum_update_interval,
                    side,
                )),
            ),
            // Merge back to an uneven K=2.
            (34, Arc::new(SpatialBoundsPolicy::new(vec![160.0], reach))),
        ];
        let coord = run_lockstep_rebalancing(
            Kind::Mtb,
            Arc::new(SpatialGridPolicy::for_horizon(
                2,
                params.space,
                params.max_speed,
                params.maximum_update_interval,
                side,
            )),
            &schedule,
            &params,
            threads,
            40,
        );
        assert_eq!(coord.rebalances(), 3);
        assert!(coord.rebalance_moved() > 0);
        assert_eq!(coord.shard_count(), 2);
    }
}

/// The engines with *default* `restore_object` (trajectory-keyed
/// removal: Naive, TC) survive split + merge too.
#[test]
fn tc_and_naive_rebalance_match_oracle() {
    let params = skew_params(51);
    let schedule: Vec<(u32, Arc<dyn PartitionPolicy>)> = vec![
        (8, Arc::new(VelocityBoundsPolicy::new(vec![0.6, 1.5, 2.5]))),
        (16, Arc::new(VelocityBoundsPolicy::new(vec![1.5]))),
    ];
    for (kind, threads) in [(Kind::Tc, 4), (Kind::Naive, 1)] {
        let coord = run_lockstep_rebalancing(
            kind,
            Arc::new(VelocityBandPolicy::new(2, params.max_speed)),
            &schedule,
            &params,
            threads,
            24,
        );
        assert_eq!(coord.rebalances(), 2);
    }
}

/// The Bˣ engine keys removals by (id, mbr, last-update) partition —
/// the restore path must re-file relocated objects under their original
/// registration so later producer updates still find them.
#[test]
fn bx_engine_rebalance_matches_oracle() {
    let params = skew_params(52);
    let schedule: Vec<(u32, Arc<dyn PartitionPolicy>)> = vec![
        (10, Arc::new(VelocityBoundsPolicy::new(vec![0.5, 1.2, 2.2]))),
        (22, Arc::new(VelocityBoundsPolicy::new(vec![1.0]))),
    ];
    let coord = run_lockstep_rebalancing(
        Kind::Bx,
        Arc::new(VelocityBandPolicy::new(2, params.max_speed)),
        &schedule,
        &params,
        4,
        32,
    );
    assert_eq!(coord.rebalances(), 2);
    assert!(coord.rebalance_moved() > 0);
}

/// A hand-built update that flips an object between the extreme speed
/// bands must migrate it and keep the answers identical — the surgical
/// version of the migration property the lockstep runs hit statistically.
#[test]
fn forced_migration_preserves_results_and_placement() {
    let params = skew_params(46);
    let (a, b) = generate_pair(&params, 0.0);
    let config = engine_config(&params);
    let policy = Arc::new(VelocityBandPolicy::new(4, params.max_speed));
    let factory = make_factory(Kind::Mtb, &params);
    let mut oracle = factory(pool(), &config, &a, &b, 0.0).expect("oracle");
    let mut coord =
        ShardCoordinator::with_factory(pool(), config, policy.clone(), &a, &b, 0.0, factory)
            .expect("coordinator");
    oracle.run_initial_join(0.0).expect("oracle initial");
    coord.run_initial_join(0.0).expect("sharded initial");

    // Ping-pong one object between a crawl (band 0) and top speed
    // (band 3), forcing a migration every tick.
    let subject = a[0];
    let mut current = subject.mbr;
    let mut last_update = 0.0;
    let migrations_before = coord.migrations();
    for tick in 1..=6u32 {
        let now = Time::from(tick);
        let here = current.at(now);
        let speed = if tick % 2 == 1 {
            0.95 * params.max_speed
        } else {
            0.05 * params.max_speed
        };
        let new_mbr = MovingRect::rigid(Rect::new(here.lo, here.hi), [speed, 0.0], now);
        let update = ObjectUpdate {
            id: subject.id,
            set: SetTag::A,
            old_mbr: current,
            last_update,
            new_mbr,
        };
        oracle.advance_time(now).expect("advance");
        coord.advance_time(now).expect("advance");
        oracle.apply_update(&update, now).expect("oracle update");
        coord.apply_update(&update, now).expect("sharded update");
        let expect_shard = if tick % 2 == 1 { 3 } else { 0 };
        assert_eq!(coord.shard_of(subject.id), Some(expect_shard));
        assert_eq!(coord.result_at(now), oracle.result_at(now), "t={now}");
        current = new_mbr;
        last_update = now;
    }
    assert_eq!(coord.migrations() - migrations_before, 6);
}

/// End-to-end through `cij-stream`: a service running the sharded
/// coordinator must emit the same (tick, pair, add/remove) event set as
/// one running the plain engine, and replaying either stream must
/// reconstruct `result_at` exactly (count conservation).
#[test]
fn stream_deltas_match_single_engine_and_conserve_counts() {
    use cij_stream::{OutboxItem, StreamConfig, StreamService, SubscriptionFilter};

    let params = skew_params(47);
    let (a, b) = generate_pair(&params, 0.0);
    let stream_config = StreamConfig::builder()
        .engine(engine_config(&params))
        .build();

    let mut single = StreamService::new(stream_config.clone(), &a, &b, 0.0, &|cfg, a, b, now| {
        Ok(Box::new(MtbEngine::new(pool(), *cfg, a, b, now)?))
    })
    .expect("single service");
    let mut sharded = StreamService::new(stream_config, &a, &b, 0.0, &|cfg, a, b, now| {
        let policy = Arc::new(VelocityBandPolicy::new(4, 3.0));
        let sharded_cfg = EngineConfig { threads: 4, ..*cfg };
        Ok(Box::new(ShardCoordinator::new(
            pool(),
            sharded_cfg,
            policy,
            a,
            b,
            now,
            &|pool, cfg, a, b, now| Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, now)?)),
        )?))
    })
    .expect("sharded service");

    let sub_single = single.subscribe(SubscriptionFilter::All).expect("sub");
    let sub_sharded = sharded.subscribe(SubscriptionFilter::All).expect("sub");

    let mut workload = UpdateStream::new(&params, &a, &b, 0.0);
    let mut replay_single = BTreeSet::new();
    let mut replay_sharded = BTreeSet::new();
    let mut event_count = 0usize;
    for tick in 1..=30u32 {
        let now = Time::from(tick);
        for u in workload.tick(now) {
            single.submit(u, now);
            sharded.submit(u, now);
        }
        single.advance_to(now).expect("single advance");
        sharded.advance_to(now).expect("sharded advance");

        let drain = |svc: &mut StreamService, id, replay: &mut BTreeSet<_>| {
            let mut events = BTreeSet::new();
            for item in svc.poll(id).unwrap_or_default() {
                let OutboxItem::Delta(stamped) = item else {
                    panic!("no gaps expected in this run");
                };
                let pair = stamped.delta.pair();
                if stamped.delta.is_add() {
                    replay.insert(pair);
                } else {
                    replay.remove(&pair);
                }
                events.insert((stamped.at.to_bits(), pair, stamped.delta.is_add()));
            }
            events
        };
        let ev_single = drain(&mut single, sub_single, &mut replay_single);
        let ev_sharded = drain(&mut sharded, sub_sharded, &mut replay_sharded);
        assert_eq!(ev_sharded, ev_single, "event sets diverged at t={now}");
        event_count += ev_single.len();

        // Conservation: replaying the deltas reconstructs the answer.
        let answer: BTreeSet<_> = single.result_at(now).into_iter().collect();
        assert_eq!(replay_single, answer, "single replay broke at t={now}");
        assert_eq!(replay_sharded, answer, "sharded replay broke at t={now}");
        assert_eq!(
            sharded.result_at(now),
            single.result_at(now),
            "service answers diverged at t={now}"
        );
    }
    assert!(event_count > 0, "run produced no deltas at all");
}
