//! Property tests for partition-boundary discipline.
//!
//! The historical bug class here is float ties: banding via
//! `(speed / max_speed * k).floor()` lets rounding place a
//! boundary-exact trajectory *below* the edge on one code path and *at*
//! it on another, so the same object lands in different shards
//! depending on who classifies it. The fix stores explicit precomputed
//! edges and compares against them directly, with the tie rule
//! "boundary-exact goes to the upper band" everywhere. These properties
//! drive speeds and positions *exactly onto every edge* (plus nudges to
//! either side) across random `k`/`max_speed`/`space` draws and assert
//! that placement and migration stay consistent.

use std::sync::Arc;

use cij_geom::{MovingRect, Rect, Time};
use cij_shard::{
    worst_corner_speed, PartitionPolicy, RouteDecision, ShardRouter, SpatialBoundsPolicy,
    SpatialGridPolicy, VelocityBandPolicy, VelocityBoundsPolicy,
};
use cij_tpr::ObjectId;
use cij_workload::{ObjectUpdate, SetTag};
use proptest::prelude::*;

/// A unit square moving at exactly `speed` along x: its worst corner
/// speed is `hypot(speed, 0) = speed`, bit-for-bit.
fn mbr_with_speed(speed: f64) -> MovingRect {
    MovingRect::rigid(
        Rect::new([10.0, 10.0], [11.0, 11.0]),
        [speed, 0.0],
        Time::from(0u32),
    )
}

/// A stationary point rect whose x-center is exactly `cx`: with
/// `lo = hi = cx`, the policy's `(lo + hi) / 2` reconstruction is
/// `2·cx / 2 = cx` bit-for-bit, so the probe really sits on the edge.
/// (A square with `cx ± 0.5` corners can re-round the center off the
/// edge.)
fn mbr_at_x(cx: f64) -> MovingRect {
    MovingRect::rigid(
        Rect::new([cx, 20.0], [cx, 21.0]),
        [0.0, 0.0],
        Time::from(0u32),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Boundary-exact speeds always take the upper band, the
    /// equal-width policy and the explicit-edges policy built from its
    /// own boundaries agree on *every* probe (edges, nudges to either
    /// side, and random speeds), and off-edge probes straddle the edge.
    #[test]
    fn velocity_boundary_ties_are_deterministic(
        k in 2usize..8,
        max_speed in 0.1f64..10.0,
        extra in 0.0f64..1.0,
    ) {
        let band = VelocityBandPolicy::new(k, max_speed);
        let bounds = VelocityBoundsPolicy::new(band.boundaries().to_vec());
        prop_assert_eq!(band.shard_count(), bounds.shard_count());

        let id = ObjectId(7);
        for (i, &edge) in band.boundaries().iter().enumerate() {
            let exact = mbr_with_speed(edge);
            prop_assert_eq!(worst_corner_speed(&exact), edge);
            // The tie rule: exactly-on-edge belongs to the band above.
            prop_assert_eq!(band.shard_of(id, &exact), i + 1);
            prop_assert_eq!(bounds.shard_of(id, &exact), i + 1);
            let below = mbr_with_speed(edge - edge * 1e-12);
            prop_assert_eq!(band.shard_of(id, &below), i);
            prop_assert_eq!(bounds.shard_of(id, &below), i);
            let above = mbr_with_speed(edge + edge * 1e-12);
            prop_assert_eq!(band.shard_of(id, &above), i + 1);
            prop_assert_eq!(bounds.shard_of(id, &above), i + 1);
        }
        let probe = mbr_with_speed(extra * max_speed);
        prop_assert_eq!(band.shard_of(id, &probe), bounds.shard_of(id, &probe));
    }

    /// Routing an update whose new trajectory sits exactly on a
    /// boundary is a [`RouteDecision::Stay`] when the object is already
    /// in the upper band, and a migration *to* the upper band when it
    /// is not — never a self-migration, never a disagreement with
    /// `shard_of`.
    #[test]
    fn router_never_self_migrates_on_boundary_speeds(
        k in 2usize..8,
        max_speed in 0.1f64..10.0,
    ) {
        let policy = VelocityBandPolicy::new(k, max_speed);
        let edges: Vec<f64> = policy.boundaries().to_vec();
        let mut router = ShardRouter::new(Arc::new(policy));
        for (i, &edge) in edges.iter().enumerate() {
            let id = ObjectId(i as u64);
            let slow = mbr_with_speed(edge * 0.5);
            let from = router.place(id, SetTag::A, &slow, 0.0);
            // Re-announce the same trajectory: exact boundary or not,
            // re-routing what is already placed must be a Stay.
            let noop = ObjectUpdate {
                id,
                set: SetTag::A,
                old_mbr: slow,
                last_update: 0.0,
                new_mbr: slow,
            };
            prop_assert_eq!(router.route(&noop, 1.0), RouteDecision::Stay(from));

            // Accelerate to exactly the edge: lands in band i+1.
            let exact = mbr_with_speed(edge);
            let update = ObjectUpdate {
                id,
                set: SetTag::A,
                old_mbr: slow,
                last_update: 1.0,
                new_mbr: exact,
            };
            match router.route(&update, 2.0) {
                RouteDecision::Migrate { from: f, to } => {
                    prop_assert_eq!(f, from);
                    prop_assert_eq!(to, i + 1);
                    prop_assert_ne!(f, to, "self-migration on a boundary tie");
                }
                RouteDecision::Stay(shard) => {
                    // Only legitimate when the slow speed already banded
                    // to i+1 (possible for the lowest edges at tiny k).
                    prop_assert_eq!(shard, i + 1);
                }
            }
            prop_assert_eq!(router.shard_of(id), Some(i + 1));
            // And staying exactly on the edge keeps the placement put.
            let hold = ObjectUpdate {
                id,
                set: SetTag::A,
                old_mbr: exact,
                last_update: 2.0,
                new_mbr: exact,
            };
            prop_assert_eq!(router.route(&hold, 3.0), RouteDecision::Stay(i + 1));
        }
    }

    /// The same tie discipline on the spatial axis: centers exactly on
    /// a strip edge go to the upper strip under both the equal-width
    /// grid and the explicit-edges policy built from its boundaries,
    /// and `repartition` between the two moves nothing.
    #[test]
    fn spatial_boundary_ties_are_deterministic(
        k in 2usize..8,
        space in 50.0f64..500.0,
    ) {
        let grid = SpatialGridPolicy::new(k, space, space);
        let bounds = SpatialBoundsPolicy::new(grid.boundaries().to_vec(), grid.reach());
        let id = ObjectId(3);
        for (i, &edge) in grid.boundaries().iter().enumerate() {
            let exact = mbr_at_x(edge);
            prop_assert_eq!(grid.shard_of(id, &exact), i + 1);
            prop_assert_eq!(bounds.shard_of(id, &exact), i + 1);
            let below = mbr_at_x(edge - edge * 1e-12);
            prop_assert_eq!(grid.shard_of(id, &below), i);
            prop_assert_eq!(bounds.shard_of(id, &below), i);
        }

        // Equal edges ⇒ equal placement ⇒ an empty rebalance diff, even
        // with every object parked exactly on an edge.
        let mut router = ShardRouter::new(Arc::new(grid.clone()));
        for (n, &edge) in grid.boundaries().iter().enumerate() {
            router.place(ObjectId(n as u64), SetTag::B, &mbr_at_x(edge), 0.0);
        }
        let moves = router.repartition(Arc::new(bounds));
        prop_assert!(moves.is_empty(), "identical edges relocated {} objects", moves.len());
    }
}
