//! # cij — continuous intersection joins over moving objects
//!
//! A from-scratch Rust reproduction of *Continuous Intersection Joins
//! Over Moving Objects* (Zhang, Lin, Ramamohanarao, Bertino — ICDE
//! 2008): time-constrained (TC) query processing, the MTB-tree, the
//! improvement techniques it enables, and every baseline the paper
//! compares against — on top of a from-scratch disk-resident TPR-tree.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`geom`] | `cij-geom` | moving rectangles, time-interval algebra |
//! | [`storage`] | `cij-storage` | 4 KB pages, LRU buffer pool, I/O stats |
//! | [`tpr`] | `cij-tpr` | the TPR/TPR*-tree |
//! | [`join`] | `cij-join` | NaiveJoin, TP-Join, TC-Join, ImprovedJoin |
//! | [`core`] | `cij-core` | continuous engines, MTB-tree, window queries |
//! | [`bx`] | `cij-bx` | the Bˣ-tree (the index the MTB bucketing derives from) |
//! | [`workload`] | `cij-workload` | the paper's synthetic workloads |
//! | [`stream`] | `cij-stream` | update ingestion, result-delta subscriptions, WAL recovery |
//! | [`shard`] | `cij-shard` | partitioned multi-engine coordinator with cross-shard join routing |
//! | [`dist`] | `cij-dist` | coordinator/worker distributed deployment with pluggable transport |
//! | [`simjoin`] | `cij-simjoin` | continuous ε-threshold similarity join (Minkowski candidates + exact refine) |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
//! use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
//! use cij::workload::{generate_pair, Params, UpdateStream};
//!
//! // Two sets of 500 moving objects, paper-default parameters.
//! let params = Params { dataset_size: 500, ..Params::default() };
//! let (set_a, set_b) = generate_pair(&params, 0.0);
//!
//! // A simulated disk with the paper's 50-page LRU buffer.
//! let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
//!
//! // The paper's full proposal: MTB-Join.
//! let mut engine = MtbEngine::new(pool, EngineConfig::default(), &set_a, &set_b, 0.0).unwrap();
//! engine.run_initial_join(0.0).unwrap();
//! println!("{} intersecting pairs at t=0", engine.result_at(0.0).len());
//!
//! // Maintain continuously as objects update.
//! let mut stream = UpdateStream::new(&params, &set_a, &set_b, 0.0);
//! for tick in 1..=10 {
//!     let now = f64::from(tick);
//!     for update in stream.tick(now) {
//!         engine.apply_update(&update, now).unwrap();
//!     }
//!     let _pairs = engine.result_at(now);
//! }
//! ```

#![deny(missing_docs)]

pub use cij_bx as bx;
pub use cij_core as core;
pub use cij_dist as dist;
pub use cij_geom as geom;
pub use cij_join as join;
pub use cij_shard as shard;
pub use cij_simjoin as simjoin;
pub use cij_storage as storage;
pub use cij_stream as stream;
pub use cij_tpr as tpr;
pub use cij_workload as workload;
