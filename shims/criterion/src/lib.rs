//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no reachable crate registry, so the workspace
//! vendors the slice of the criterion API its benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` / `bench_with_input`,
//! `BenchmarkId`, and `black_box`.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! `sample_size` samples and reports min / mean / max wall-clock time per
//! iteration. No statistical analysis, plots, or saved baselines. When
//! invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) every benchmark body runs exactly once, unmeasured, so
//! the test suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives iteration of one benchmark body.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Per-sample mean iteration times recorded by `iter`.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running enough iterations per sample for a stable
    /// wall-clock reading (one untimed run in `--test` mode).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up and per-sample iteration sizing: aim for ≥ 1 ms per
        // sample so Instant resolution noise stays below ~0.1 %.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let iters =
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.times.push(t0.elapsed() / iters);
        }
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    default_samples: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First free arg (not a flag) is a name filter, as in criterion.
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-') && *a != "bench")
            .cloned();
        Self {
            test_mode,
            default_samples: 20,
            filter,
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            samples,
            times: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok (bench smoke run)");
            return;
        }
        if b.times.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        let min = *b.times.iter().min().expect("non-empty");
        let max = *b.times.iter().max().expect("non-empty");
        let mean = b.times.iter().sum::<Duration>() / b.times.len() as u32;
        println!(
            "{id:<44} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let samples = self.default_samples;
        self.run_one(&id.id, samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(&id, samples, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("join", 42).id, "join/42");
        assert_eq!(BenchmarkId::from_parameter("ALL").id, "ALL");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_runs_body_in_test_mode() {
        let mut b = Bencher {
            test_mode: true,
            samples: 5,
            times: Vec::new(),
        };
        let mut hits = 0;
        b.iter(|| hits += 1);
        assert_eq!(hits, 1);
        assert!(b.times.is_empty());
    }

    #[test]
    fn bencher_samples_in_bench_mode() {
        let mut b = Bencher {
            test_mode: false,
            samples: 3,
            times: Vec::new(),
        };
        b.iter(|| black_box(2u64 + 2));
        assert_eq!(b.times.len(), 3);
    }
}
