//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no reachable crate registry, so the workspace
//! vendors the slice of the proptest API its tests use: the `proptest!`
//! macro, `Strategy` with `prop_map`, range/tuple/`Just`/`prop_oneof!`
//! strategies, `proptest::collection::vec`, `any::<T>()`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case is reported as-is;
//! * the case stream is seeded from the test function's name, so every
//!   run of a test explores the same deterministic sequence (failures
//!   always reproduce);
//! * `.proptest-regressions` files are not consulted (regressions worth
//!   keeping must be promoted to named unit tests).

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test explores.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// The deterministic random source strategies draw from.
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            Self(rand::rngs::StdRng::seed_from_u64(seed))
        }

        /// A seed derived deterministically from a test's name.
        #[must_use]
        pub fn seed_from_name(name: &str) -> u64 {
            // FNV-1a, good enough to decorrelate sibling tests.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    // f64 is the only float on purpose: a second float impl would make
    // unannotated literal ranges ambiguous as strategies.
    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    /// Type-erased sampler used by [`Union`].
    pub type Sampler<T> = Rc<dyn Fn(&mut TestRng) -> T>;

    /// A weighted choice among strategies — `prop_oneof!`'s engine.
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<(u32, Sampler<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// An empty union; populate it with [`Union::or`].
        #[must_use]
        pub fn empty() -> Self {
            Self {
                options: Vec::new(),
                total: 0,
            }
        }

        /// Adds a weighted option (builder-style, so the value type
        /// unifies across heterogeneous strategy arms).
        #[must_use]
        pub fn or<S>(mut self, weight: u32, strat: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            self.options.push((
                weight,
                Rc::new(move |rng: &mut TestRng| strat.generate(rng)),
            ));
            self.total += u64::from(weight);
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(
                self.total > 0,
                "prop_oneof! needs at least one weighted option"
            );
            let mut pick = rng.next_u64() % self.total;
            for (w, sampler) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return sampler(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    /// A type with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Reinterpreted bits: covers NaN, infinities, subnormals.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of type `T` (mirrors `proptest::prelude::any`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.len() <= 1 {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests (see crate docs for the
/// differences from upstream proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed =
                    $crate::test_runner::TestRng::seed_from_name(stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Weighted or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or(($weight) as u32, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or(1u32, $strat))+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Range, tuple, map, oneof, vec, and any strategies compose.
        #[test]
        fn strategies_stay_in_bounds(
            x in 0.0f64..10.0,
            n in 1usize..5,
            pair in (0u8..4, -2i64..=2).prop_map(|(a, b)| (a, b)),
            pick in prop_oneof![2 => Just(0u32), 1 => 10u32..20],
            xs in crate::collection::vec(0u16..100, 0..8),
            raw in any::<u64>(),
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(pair.0 < 4 && (-2..=2).contains(&pair.1));
            prop_assert!(pick == 0 || (10..20).contains(&pick));
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| v < 100));
            let _ = raw;
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::strategy::Strategy;
        let seed = crate::test_runner::TestRng::seed_from_name("t");
        let mut a = crate::test_runner::TestRng::from_seed(seed);
        let mut b = crate::test_runner::TestRng::from_seed(seed);
        let s = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
