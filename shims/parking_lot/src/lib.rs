//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no reachable crate registry, so the workspace
//! vendors the tiny slice of the `parking_lot` API it actually uses,
//! implemented on `std::sync`. Semantics match `parking_lot` where the
//! two differ from std: `lock()` never returns a poison error (a
//! panicked holder does not poison the lock for everyone else).

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
