//! Offline stand-in for the `rand` crate.
//!
//! The build container has no reachable crate registry, so the workspace
//! vendors the slice of the `rand` 0.8 API it uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen_range` / `gen_bool` / `gen`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic, fast, and statistically
//! solid for test workload generation. Streams are **not** bit-equal to
//! upstream `rand`; nothing in this workspace depends on upstream
//! streams, only on determinism within a build.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
    /// Alias: the shim uses one generator for both std and small RNGs.
    pub type SmallRng = crate::StdRng;
}

/// The core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A type whose uniform distribution `gen::<T>()` can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::draw(rng) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Guard the open upper bound against rounding.
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = f64::draw(rng) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

// f64 only: a second float impl would make `gen_range(1.0..3.0)` ambiguous
// in contexts (like negation) that don't pin the literal's type.
float_sample_range!(f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::draw(self) < p
    }

    /// Draws one uniformly distributed value of type `T`.
    #[allow(clippy::should_implement_trait)] // rand 0.8 API name
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_stream_quality() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge.
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&v));
            let i = rng.gen_range(0..17usize);
            assert!(i < 17);
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_int_is_not_badly_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts = {counts:?}");
        }
    }
}
