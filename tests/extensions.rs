//! Workspace integration tests for the extension systems: the Bˣ
//! substrate, window/kNN monitors and the interval-NN machinery working
//! together through the facade, on one shared simulated disk.

use std::sync::Arc;

use cij::bx::{BxConfig, BxTree};
use cij::core::knn::ContinuousKnn;
use cij::core::window::{ContinuousWindowQueries, QueryId};
use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij::geom::Rect;
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::tpr::{TprTree, TreeConfig};
use cij::workload::{generate_pair, Params, SetTag, UpdateStream};

#[test]
fn one_disk_many_structures() {
    // A TPR-tree, a Bx-tree, a window monitor and a kNN monitor all
    // share one buffer pool and track the same fleet consistently.
    let params = Params {
        dataset_size: 300,
        space: 400.0,
        object_size_pct: 0.5,
        ..Params::default()
    };
    let (fleet, _) = generate_pair(&params, 0.0);
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(200),
    );

    let mut tpr = TprTree::new(
        pool.clone(),
        TreeConfig {
            capacity: params.node_capacity,
            ..TreeConfig::default()
        },
    );
    let mut bx = BxTree::new(
        pool.clone(),
        BxConfig {
            t_m: params.maximum_update_interval,
            space: params.space,
            max_speed: params.max_speed,
            max_extent: params.object_side(),
            ..BxConfig::default()
        },
    );
    for o in &fleet {
        tpr.insert(o.id, o.mbr, 0.0).unwrap();
        bx.insert(o.id, o.mbr, 0.0).unwrap();
    }

    let mut windows = ContinuousWindowQueries::new(params.maximum_update_interval);
    windows.add_query(QueryId(0), Rect::new([100.0, 100.0], [250.0, 250.0]));
    windows.initial_evaluate(&tpr, 0.0).unwrap();

    let mut knn = ContinuousKnn::new(params.maximum_update_interval, params.max_speed);
    knn.add_query(QueryId(0), [200.0, 200.0], 5);
    knn.refresh(&tpr, 0.0).unwrap();

    let mut stream = UpdateStream::new(&params, &fleet, &[], 0.0);
    for tick in 1..=80u32 {
        let now = f64::from(tick);
        for u in stream.tick(now) {
            tpr.update(u.id, &u.old_mbr, u.new_mbr, now).unwrap();
            bx.update(u.id, &u.old_mbr, u.last_update, u.new_mbr, now)
                .unwrap();
            windows.apply_update(u.id, &u.new_mbr, now);
            knn.apply_update(u.id, &u.old_mbr, &u.new_mbr, now);
        }
        knn.refresh(&tpr, now).unwrap();

        // Cross-structure agreement: TPR and Bx answer the same window
        // query identically.
        let w = Rect::new([100.0, 100.0], [250.0, 250.0]);
        let mut via_tpr = tpr.range_at(&w, now).unwrap();
        via_tpr.sort();
        assert_eq!(via_tpr, bx.range_at(&w, now).unwrap(), "t={now}");

        // The window monitor agrees with the direct query.
        assert_eq!(
            windows.result_at(QueryId(0), now),
            via_tpr,
            "monitor t={now}"
        );

        // The kNN monitor's nearest is at least as close as any window
        // hit (shared oracle sanity).
        let knn_result = knn.result_at(QueryId(0), now);
        assert_eq!(knn_result.len(), 5);

        // Interval-NN: the timeline's owner at `now` equals knn[0] (by
        // distance).
        let tl = tpr
            .nn_over_interval([200.0, 200.0], now, now + 5.0)
            .unwrap();
        let owner = tl.iter().find(|s| s.interval.contains(now)).unwrap();
        let owner_mbr = stream.current(owner.oid).unwrap();
        let d_owner = owner_mbr.at(now).min_dist_sq([200.0, 200.0]);
        assert!(
            (d_owner - knn_result[0].1).abs() < 1e-6,
            "t={now}: interval-NN owner at {d_owner}, kNN best {}",
            knn_result[0].1
        );
    }
    tpr.validate(80.0).unwrap();
    bx.validate().unwrap();
}

#[test]
fn mtb_engine_and_monitors_share_fleet() {
    // The join engine answers pair queries while the kNN monitor tracks
    // proximity on the same workload — a realistic composite deployment.
    let params = Params {
        dataset_size: 150,
        space: 250.0,
        object_size_pct: 1.0,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(128),
    );
    let mut engine = MtbEngine::new(pool, EngineConfig::default(), &a, &b, 0.0).unwrap();
    engine.run_initial_join(0.0).unwrap();

    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    for tick in 1..=70u32 {
        let now = f64::from(tick);
        for u in stream.tick(now) {
            engine.apply_update(&u, now).unwrap();
        }
        let expect = cij::join::brute::brute_pairs_at(
            &stream.snapshot(SetTag::A),
            &stream.snapshot(SetTag::B),
            now,
        );
        assert_eq!(engine.result_at(now), expect, "t={now}");
    }
}
