//! Workspace-level integration tests: the full stack exercised through
//! the facade crate, the way a downstream user would drive it.

use std::sync::Arc;

use cij::core::{
    run_simulation, ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, NaiveEngine, TcEngine,
};
use cij::join::{brute, techniques};
use cij::storage::{BufferPool, InMemoryStore, DEFAULT_POOL_PAGES};
use cij::workload::{generate_pair, Distribution, Params, SetTag, UpdateStream};

fn paper_pool() -> BufferPool {
    // The paper's exact buffer setup: 50 pages of 4 KB.
    let pool = BufferPool::with_default_capacity(Arc::new(InMemoryStore::new()));
    assert_eq!(pool.capacity(), DEFAULT_POOL_PAGES);
    pool
}

#[test]
fn facade_quickstart_compiles_and_runs() {
    let params = Params {
        dataset_size: 300,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let mut engine = MtbEngine::new(paper_pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    engine.run_initial_join(0.0).unwrap();
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    for tick in 1..=5 {
        let now = f64::from(tick);
        for u in stream.tick(now) {
            engine.apply_update(&u, now).unwrap();
        }
    }
    // The answer matches the oracle at the end.
    let expect = brute::brute_pairs_at(
        &stream.snapshot(SetTag::A),
        &stream.snapshot(SetTag::B),
        5.0,
    );
    assert_eq!(engine.result_at(5.0), expect);
}

#[test]
fn mtb_beats_etp_on_maintenance_io() {
    // The paper's headline: MTB-Join maintenance is far cheaper than
    // ETP-Join's. Checked end-to-end on identical seeded workloads.
    let params = Params {
        dataset_size: 800,
        space: 700.0,
        object_size_pct: 0.5,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);

    let mut etp = EtpEngine::new(paper_pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    let etp_metrics = run_simulation(&mut etp, &mut stream, 0.0, 15.0, 0.0, |_, _| Ok(())).unwrap();

    let mut mtb = MtbEngine::new(paper_pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    let mtb_metrics = run_simulation(&mut mtb, &mut stream, 0.0, 15.0, 0.0, |_, _| Ok(())).unwrap();

    assert!(
        mtb_metrics.io_per_update() < etp_metrics.io_per_update(),
        "MTB {} I/O/update should beat ETP {}",
        mtb_metrics.io_per_update(),
        etp_metrics.io_per_update()
    );
}

#[test]
fn tc_beats_naive_on_maintenance_io() {
    let params = Params {
        dataset_size: 800,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);

    let mut naive = NaiveEngine::new(paper_pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    let naive_metrics =
        run_simulation(&mut naive, &mut stream, 0.0, 20.0, 0.0, |_, _| Ok(())).unwrap();

    let mut tc = TcEngine::new(paper_pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    let tc_metrics = run_simulation(&mut tc, &mut stream, 0.0, 20.0, 0.0, |_, _| Ok(())).unwrap();

    assert!(
        tc_metrics.maintenance_io <= naive_metrics.maintenance_io,
        "TC maintenance I/O {} should not exceed Naive {}",
        tc_metrics.maintenance_io,
        naive_metrics.maintenance_io
    );
    // The initial join gap is the Fig. 7 claim.
    assert!(tc_metrics.initial_io <= naive_metrics.initial_io);
}

#[test]
fn all_distributions_run_end_to_end() {
    for dist in [
        Distribution::Uniform,
        Distribution::Gaussian,
        Distribution::Battlefield,
    ] {
        let params = Params {
            dataset_size: 200,
            distribution: dist,
            space: 300.0,
            object_size_pct: 1.0,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let mut engine =
            MtbEngine::new(paper_pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
        engine.run_initial_join(0.0).unwrap();
        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        for tick in 1..=70 {
            let now = f64::from(tick);
            for u in stream.tick(now) {
                engine.apply_update(&u, now).unwrap();
            }
        }
        let expect = brute::brute_pairs_at(
            &stream.snapshot(SetTag::A),
            &stream.snapshot(SetTag::B),
            70.0,
        );
        assert_eq!(engine.result_at(70.0), expect, "distribution {dist}");
    }
}

#[test]
fn paper_parameter_space_all_engines_one_tick() {
    // Smoke the entire Table I parameter cross-product (small sizes) on
    // every engine: nothing panics, everything agrees with the oracle.
    let sizes = [50usize, 150];
    let speeds = [1.0, 5.0];
    let obj_sizes = [0.05, 0.8];
    for &dataset_size in &sizes {
        for &max_speed in &speeds {
            for &object_size_pct in &obj_sizes {
                let params = Params {
                    dataset_size,
                    max_speed,
                    object_size_pct,
                    space: 300.0,
                    ..Params::default()
                };
                let (a, b) = generate_pair(&params, 0.0);
                let config = EngineConfig {
                    techniques: techniques::ALL,
                    ..Default::default()
                };
                let mut engines: Vec<Box<dyn ContinuousJoinEngine>> = vec![
                    Box::new(NaiveEngine::new(paper_pool(), config, &a, &b, 0.0).unwrap()),
                    Box::new(TcEngine::new(paper_pool(), config, &a, &b, 0.0).unwrap()),
                    Box::new(EtpEngine::new(paper_pool(), config, &a, &b, 0.0).unwrap()),
                    Box::new(MtbEngine::new(paper_pool(), config, &a, &b, 0.0).unwrap()),
                ];
                let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
                for e in &mut engines {
                    e.run_initial_join(0.0).unwrap();
                }
                let updates = stream.tick(1.0);
                let expect = brute::brute_pairs_at(
                    &stream.snapshot(SetTag::A),
                    &stream.snapshot(SetTag::B),
                    1.0,
                );
                for e in &mut engines {
                    e.advance_time(1.0).unwrap();
                    for u in &updates {
                        e.apply_update(u, 1.0).unwrap();
                    }
                    assert_eq!(
                        e.result_at(1.0),
                        expect,
                        "{} at size={dataset_size} speed={max_speed} obj={object_size_pct}",
                        e.name()
                    );
                }
            }
        }
    }
}
