//! The paper's first motivating scenario (Fig. 1a): police cars drive
//! around a city, each covering a region around itself; the dispatcher
//! continuously tracks which communities every car's coverage region
//! intersects.
//!
//! Cars are set A (moving squares: the MBR of the coverage circle);
//! communities are set B (static rectangles). The continuous
//! intersection join *is* the dispatch board.
//!
//! ```text
//! cargo run --release --example police_dispatch
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij::geom::{MovingRect, Rect};
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::tpr::ObjectId;
use cij::workload::{MovingObject, ObjectUpdate, SetTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CITY: f64 = 1000.0;
const COVERAGE_SIDE: f64 = 60.0; // MBR of each car's coverage circle
const N_CARS: u64 = 40;
const T_M: f64 = 60.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Set A: police cars, positioned at stations, patrolling randomly.
    let mut cars: Vec<MovingObject> = (0..N_CARS)
        .map(|i| {
            let x = rng.gen_range(0.0..CITY - COVERAGE_SIDE);
            let y = rng.gen_range(0.0..CITY - COVERAGE_SIDE);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let speed = rng.gen_range(1.0..4.0);
            MovingObject {
                id: ObjectId(i),
                mbr: MovingRect::rigid(
                    Rect::new([x, y], [x + COVERAGE_SIDE, y + COVERAGE_SIDE]),
                    [speed * angle.cos(), speed * angle.sin()],
                    0.0,
                ),
            }
        })
        .collect();

    // Set B: a 10×10 grid of communities (static rectangles with gaps).
    let mut community_names = HashMap::new();
    let communities: Vec<MovingObject> = (0..100u64)
        .map(|i| {
            let (gx, gy) = (i % 10, i / 10);
            let id = ObjectId(1_000 + i);
            community_names.insert(id, format!("district {}{}", (b'A' + gx as u8) as char, gy));
            let x = gx as f64 * 100.0 + 10.0;
            let y = gy as f64 * 100.0 + 10.0;
            MovingObject {
                id,
                mbr: MovingRect::stationary(Rect::new([x, y], [x + 80.0, y + 80.0]), 0.0),
            }
        })
        .collect();

    let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
    let config = EngineConfig {
        t_m: T_M,
        ..EngineConfig::default()
    };
    let mut engine =
        MtbEngine::new(pool, config, &cars, &communities, 0.0).expect("engine construction");
    engine.run_initial_join(0.0).expect("initial join");

    let mut last_update = vec![0.0f64; N_CARS as usize];
    for tick in 0..=20u32 {
        let now = f64::from(tick);
        if tick > 0 {
            // Cars report in when they turn (or at the T_M heartbeat).
            for car in cars.iter_mut() {
                let idx = car.id.0 as usize;
                let turn = rng.gen_bool(0.15);
                if !turn && now - last_update[idx] < T_M {
                    continue;
                }
                let here = car.mbr.at(now);
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                let speed = rng.gen_range(1.0..4.0);
                let new_mbr =
                    MovingRect::rigid(here, [speed * angle.cos(), speed * angle.sin()], now);
                let update = ObjectUpdate {
                    id: car.id,
                    set: SetTag::A,
                    old_mbr: car.mbr,
                    last_update: last_update[idx],
                    new_mbr,
                };
                engine.apply_update(&update, now).expect("update");
                car.mbr = new_mbr;
                last_update[idx] = now;
            }
        }

        // The dispatch board: which communities does each car cover now?
        let pairs = engine.result_at(now);
        let mut per_car: HashMap<ObjectId, Vec<&str>> = HashMap::new();
        for (car, community) in &pairs {
            per_car
                .entry(*car)
                .or_default()
                .push(&community_names[community]);
        }
        let covered: usize = per_car.values().map(Vec::len).sum();
        println!(
            "t={now:>2}: {} cars covering {covered} community overlaps",
            per_car.len()
        );
        if tick % 10 == 0 {
            let mut sample: Vec<_> = per_car.iter().take(3).collect();
            sample.sort_by_key(|(id, _)| id.0);
            for (car, names) in sample {
                println!("    car {:>2} → {}", car.0, names.join(", "));
            }
        }
    }
}
