//! Quickstart: run the paper's full proposal (MTB-Join) end to end on a
//! synthetic workload and watch the continuous answer evolve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::workload::{generate_pair, Params, UpdateStream};

fn main() {
    // Paper-default parameters, scaled down for a demo: 2 × 2000 square
    // objects in a 1000×1000 space, max speed 3, T_M = 60.
    let params = Params {
        dataset_size: 2000,
        ..Params::default()
    };
    println!(
        "workload: 2 × {} objects, space {}², object side {}, T_M = {}",
        params.dataset_size,
        params.space,
        params.object_side(),
        params.maximum_update_interval
    );

    // One simulated disk: 4 KB pages behind the paper's 50-page LRU pool.
    let store = Arc::new(InMemoryStore::new());
    let pool = BufferPool::new(store, BufferPoolConfig::default());

    let (set_a, set_b) = generate_pair(&params, 0.0);
    let mut engine = MtbEngine::new(pool.clone(), EngineConfig::default(), &set_a, &set_b, 0.0)
        .expect("engine construction");

    // Phase 1: the initial join.
    let before = pool.stats().snapshot();
    engine.run_initial_join(0.0).expect("initial join");
    let io = (pool.stats().snapshot() - before).physical_total();
    println!(
        "initial join: {} intersecting pairs at t=0 ({io} disk I/Os)",
        engine.result_at(0.0).len()
    );

    // Phase 2: continuous maintenance as objects send updates.
    let mut stream = UpdateStream::new(&params, &set_a, &set_b, 0.0);
    for tick in 1..=30u32 {
        let now = f64::from(tick);
        let updates = stream.tick(now);
        let before = pool.stats().snapshot();
        for update in &updates {
            engine.apply_update(update, now).expect("update");
        }
        let io = (pool.stats().snapshot() - before).physical_total();
        let pairs = engine.result_at(now);
        println!(
            "t={now:>3}: {:>3} updates, {:>4} active pairs, {io:>4} I/Os \
             ({} live buckets per side)",
            updates.len(),
            pairs.len(),
            engine.mtb_a().bucket_count(),
        );
    }

    println!(
        "buffer hit ratio: {:.1}%",
        pool.stats().snapshot().hit_ratio().unwrap_or(0.0) * 100.0
    );
}
