//! §V beyond window queries: nearest-neighbor analytics over moving
//! objects, TC-processed.
//!
//! Scenario: dispatch stations watch a fleet of couriers. Two tools from
//! the library:
//!
//! * [`nn_over_interval`](cij::tpr::TprTree::nn_over_interval) — the
//!   exact "who is nearest, when" timeline for the next `T_M` ticks
//!   (predictions past `T_M` would be invalidated by re-registrations —
//!   Theorem 1's reasoning applied to kNN, as §V suggests);
//! * [`ContinuousKnn`](cij::core::knn::ContinuousKnn) — live k-nearest
//!   monitoring with guard-radius candidate sets, re-ranked per tick
//!   without touching the index.
//!
//! ```text
//! cargo run --release --example nn_tracker
//! ```

use std::sync::Arc;

use cij::core::knn::ContinuousKnn;
use cij::core::window::QueryId;
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::tpr::{TprTree, TreeConfig};
use cij::workload::{generate_set, Params, SetTag, UpdateStream};

fn main() {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let couriers = generate_set(&params, SetTag::A, 0, 0.0);

    let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
    let mut tree = TprTree::new(
        pool,
        TreeConfig {
            capacity: params.node_capacity,
            ..TreeConfig::default()
        },
    );
    for c in &couriers {
        tree.insert(c.id, c.mbr, 0.0).expect("insert");
    }

    // 1. The NN timeline of the central station over one T_M window.
    let station = [500.0, 500.0];
    let timeline = tree
        .nn_over_interval(station, 0.0, params.maximum_update_interval)
        .expect("nn timeline");
    println!(
        "station at {station:?}: {} handovers of 'nearest courier' predicted over the next {} ticks",
        timeline.len().saturating_sub(1),
        params.maximum_update_interval
    );
    for slice in timeline.iter().take(5) {
        println!(
            "  t ∈ [{:6.2}, {:6.2}]  nearest = courier {}",
            slice.interval.start, slice.interval.end, slice.oid
        );
    }

    // 2. Live k-nearest monitoring across three stations as couriers
    //    send updates.
    let stations = [
        ([250.0, 250.0], 3usize),
        ([500.0, 500.0], 5),
        ([800.0, 300.0], 3),
    ];
    let mut monitor = ContinuousKnn::new(params.maximum_update_interval, params.max_speed);
    for (i, (p, k)) in stations.iter().enumerate() {
        monitor.add_query(QueryId(i as u32), *p, *k);
    }
    monitor.refresh(&tree, 0.0).expect("initial kNN");

    let mut stream = UpdateStream::new(&params, &couriers, &[], 0.0);
    for tick in 1..=30u32 {
        let now = f64::from(tick);
        for u in stream.tick(now) {
            tree.update(u.id, &u.old_mbr, u.new_mbr, now)
                .expect("tree update");
            monitor.apply_update(u.id, &u.old_mbr, &u.new_mbr, now);
        }
        monitor.refresh(&tree, now).expect("refresh");
        if tick % 10 == 0 {
            for (i, (p, k)) in stations.iter().enumerate() {
                let knn = monitor.result_at(QueryId(i as u32), now);
                let nearest = knn.first().map(|(o, d2)| format!("{o} @ {:.1}", d2.sqrt()));
                println!(
                    "t={now:>3} station {i} ({:.0},{:.0}) k={k}: nearest {}",
                    p[0],
                    p[1],
                    nearest.unwrap_or_else(|| "—".into())
                );
            }
        }
    }
}
