//! End-to-end tour of the `cij-stream` service: ingestion with
//! backpressure, result-delta subscriptions with filters, WAL
//! crash recovery, and the unified metrics snapshot.
//!
//! Run with `cargo run --release --example stream_demo`.

use std::sync::Arc;

use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij::geom::Rect;
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::stream::{
    IngestOutcome, OutboxItem, ResultDelta, StreamConfig, StreamService, SubscriptionFilter,
};
use cij::tpr::TprResult;
use cij::workload::{generate_pair, MovingObject, Params, UpdateStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params {
        dataset_size: 300,
        space: 300.0,
        object_size_pct: 1.0,
        ..Params::default()
    };
    let (set_a, set_b) = generate_pair(&params, 0.0);

    // Any engine plugs in through a factory; recovery reuses the same
    // factory to rebuild the identical engine from the journaled
    // genesis sets.
    let factory = |config: &EngineConfig,
                   a: &[MovingObject],
                   b: &[MovingObject],
                   start: f64|
     -> TprResult<Box<dyn ContinuousJoinEngine>> {
        let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
        Ok(Box::new(MtbEngine::new(pool, *config, a, b, start)?))
    };

    let wal_path = std::env::temp_dir().join("cij-stream-demo.wal");
    let config = StreamConfig::builder()
        .engine(EngineConfig::builder().metrics(true).build())
        .batch_capacity(4096)
        .outbox_capacity(256)
        .wal_path(wal_path.clone())
        .build();
    let mut service = StreamService::new(config.clone(), &set_a, &set_b, 0.0, &factory)?;
    println!(
        "service over {} engine, journaling to {}",
        service.engine_name(),
        wal_path.display()
    );

    // Two subscribers: one wants everything, one only cares about a
    // 60×60 neighbourhood (the continuous-window-query predicate).
    let all = service.subscribe(SubscriptionFilter::All)?;
    let corner = service.subscribe(SubscriptionFilter::Window(Rect::new(
        [0.0, 0.0],
        [60.0, 60.0],
    )))?;

    let mut stream = UpdateStream::new(&params, &set_a, &set_b, 0.0);
    let mut accepted = 0u64;
    for tick in 1..=30 {
        let now = f64::from(tick);
        for update in stream.tick(now) {
            match service.submit(update, now) {
                IngestOutcome::Accepted => accepted += 1,
                // A saturated queue is a signal, not an error: back off
                // and resubmit after the next advance.
                outcome => println!("  t={now}: backpressure ({outcome:?})"),
            }
        }
        let deltas = service.advance_to(now)?;
        let adds = deltas.iter().filter(|d| d.delta.is_add()).count();
        if tick % 10 == 0 {
            println!(
                "t={now:>4}: {:>3} pairs reported, +{adds} -{} this tick",
                service.reported_pairs(),
                deltas.len() - adds,
            );
        }
    }
    println!("{accepted} updates ingested over 30 ticks");

    for (name, id) in [("all-pairs", all), ("corner-window", corner)] {
        let items = service.poll(id).expect("known subscriber");
        let (mut added, mut removed, mut gaps) = (0u64, 0u64, 0u64);
        for item in items {
            match item {
                OutboxItem::Delta(d) => match d.delta {
                    ResultDelta::PairAdded { .. } => added += 1,
                    ResultDelta::PairRemoved { .. } => removed += 1,
                },
                OutboxItem::Gap { dropped } => gaps += dropped,
            }
        }
        println!("subscriber {name:>13}: +{added} -{removed} (gap: {gaps} dropped)");
    }

    // The unified observability view: one snapshot spanning the engine
    // (join counters, pool I/O), the WAL, and the service's own queue
    // and subscriber metrics — here in Prometheus text exposition.
    let snapshot = service.metrics_snapshot();
    println!("\nmetrics snapshot ({} counters):", snapshot.counters.len());
    print!("{}", snapshot.to_prometheus());

    // Simulate a crash: drop the service, then rebuild from the WAL.
    drop(service);
    let (recovered, report) = StreamService::recover(config, &factory)?;
    println!(
        "recovered to t={} ({} batches replayed, {} subscribers, torn tail: {})",
        report.last_tick, report.batches_replayed, report.subscribers, report.tail_truncated
    );
    println!(
        "recovered answer at t={}: {} pairs",
        report.last_tick,
        recovered.result_at(report.last_tick).len()
    );

    let _ = std::fs::remove_file(&wal_path);
    Ok(())
}
