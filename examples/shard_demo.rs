//! Tour of the `cij-shard` coordinator: four velocity-band shards, one
//! MTB-Join engine per shard pair, cross-shard migration routing, a
//! merged result-delta changelog, and the aggregated cache/I-O report.
//!
//! Run with `cargo run --release --example shard_demo`.

use std::sync::Arc;

use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij::shard::{ShardCoordinator, VelocityBandPolicy};
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::tpr::TprResult;
use cij::workload::{generate_pair, Distribution, Params, UpdateStream};

fn main() -> TprResult<()> {
    // The skewed-velocity workload: 20% of objects near top speed, the
    // rest slow — the regime velocity banding is built for.
    let params = Params {
        dataset_size: 400,
        distribution: Distribution::VelocitySkew,
        maximum_update_interval: 20.0,
        space: 500.0,
        object_size_pct: 1.0,
        ..Params::default()
    };
    let (set_a, set_b) = generate_pair(&params, 0.0);

    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(4096),
    );
    let config = EngineConfig {
        t_m: params.maximum_update_interval,
        threads: 4,
        metrics: true, // so the report carries a registry snapshot
        ..EngineConfig::default()
    }
    .to_builder()
    .node_cache_capacity(1024) // so the report's cache section has data
    .build();

    let policy = Arc::new(VelocityBandPolicy::new(4, params.max_speed));
    let mut coordinator = ShardCoordinator::new(
        pool,
        config,
        policy,
        &set_a,
        &set_b,
        0.0,
        &|pool, cfg, a, b, now| Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, now)?)),
    )?;
    println!(
        "{} over {} velocity bands: {} shard-pair engines",
        coordinator.name(),
        coordinator.shard_count(),
        coordinator.engine_count(),
    );

    // The coordinator merges every shard-pair engine's ResultBuffer
    // deltas into one globally deduplicated changelog — the same feed
    // the cij-stream subscription path consumes.
    coordinator.enable_delta_tracking();
    coordinator.run_initial_join(0.0)?;
    println!(
        "t=   0: initial join reports {} intersecting pairs",
        coordinator.result_at(0.0).len()
    );

    let mut stream = UpdateStream::new(&params, &set_a, &set_b, 0.0);
    let (mut added, mut removed) = (0u64, 0u64);
    for tick in 1..=30u32 {
        let now = f64::from(tick);
        let updates = stream.tick(now);
        coordinator.advance_time(now)?;
        coordinator.apply_batch(&updates, now)?;
        coordinator.gc(now);
        let changed = coordinator
            .take_result_changes()
            .expect("delta tracking is on");
        let live: std::collections::HashSet<_> = coordinator.result_at(now).into_iter().collect();
        let adds = changed.iter().filter(|p| live.contains(*p)).count() as u64;
        added += adds;
        removed += changed.len() as u64 - adds;
        if tick % 10 == 0 {
            println!(
                "t={now:>4}: {:>3} pairs live, merged changelog +{adds} -{} this tick, \
                 {} migrations so far",
                live.len(),
                changed.len() as u64 - adds,
                coordinator.migrations(),
            );
        }
    }
    println!("changelog over 30 ticks: +{added} -{removed} merged deltas");

    // The aggregated diagnostics: per-pair counters, shard populations,
    // merged decoded-node-cache totals, and the shared pool's I/O.
    let report = coordinator.report();
    println!("\n{report}");

    // The unified metrics view of the same run — per-pair traversal
    // counters, per-shard population gauges, migrations, and the shared
    // pool's live I/O counters — in Prometheus text exposition.
    if let Some(metrics) = &report.metrics {
        println!(
            "\nmetrics snapshot ({} counters, {} gauges):",
            metrics.counters.len(),
            metrics.gauges.len()
        );
        print!("{}", metrics.to_prometheus());
    }
    Ok(())
}
