//! Replays the checked-in Geolife-style trajectory sample through the
//! ε-threshold proximity join.
//!
//! The sample under `crates/workload/data/` is a handful of Beijing
//! trajectories (set A: pedestrians/bicycles, set B: taxis/buses) in the
//! plain-text `trace` format, projected to a local metre frame. The demo
//! parses both files with `cij::workload::trace`, builds a
//! [`ProximityJoinEngine`] asking *"which pedestrian–vehicle pairs come
//! within ε metres during the next `T_M` seconds?"*, and replays the
//! update trace tick by tick, reporting the evolving answer and the
//! candidate/refine economics from the metrics registry.
//!
//! Run with `cargo run --release --example trace_simjoin_demo`.
//!
//! [`ProximityJoinEngine`]: cij::simjoin::ProximityJoinEngine

use std::fs::File;
use std::io::BufReader;
use std::sync::Arc;

use cij::core::{ContinuousJoinEngine, EngineConfig};
use cij::simjoin::{ProximityConfig, ProximityJoinEngine};
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::workload::trace;

const OBJECTS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/crates/workload/data/geolife_sample.objects.csv"
);
const UPDATES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/crates/workload/data/geolife_sample.updates.csv"
);

/// Proximity threshold: report pairs that pass within 30 m.
const EPSILON: f64 = 30.0;
/// Lookahead horizon: the next 10 s of each trajectory segment.
const T_M: f64 = 10.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (set_a, set_b) = trace::read_objects(&mut BufReader::new(File::open(OBJECTS)?))?;
    let updates = trace::read_updates(&mut BufReader::new(File::open(UPDATES)?), &set_a, &set_b)?;
    println!(
        "sample: {} pedestrian/bicycle + {} taxi/bus trajectories, {} re-registrations",
        set_a.len(),
        set_b.len(),
        updates.len()
    );

    let engine_cfg = EngineConfig::builder().t_m(T_M).metrics(true).build();
    let config = ProximityConfig::new(engine_cfg, EPSILON);
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::sharded(128, 8),
    );
    let mut engine = ProximityJoinEngine::new(pool, config, &set_a, &set_b, 0.0)?;
    engine.enable_delta_tracking();
    engine.run_initial_join(0.0)?;
    println!(
        "t= 0.0: {:>2} pairs within {EPSILON} m during [0, {T_M}]",
        engine.result_at(0.0).len()
    );
    engine.take_result_changes();

    // The trace is time-ordered; replay it in whole-tick groups.
    let last_tick = updates.last().map_or(0.0, |u| u.new_mbr.t_ref);
    let mut tick = 1.0;
    while tick <= last_tick {
        engine.advance_time(tick)?;
        let mut applied = 0;
        for u in updates.iter().filter(|u| u.new_mbr.t_ref == tick) {
            engine.apply_update(u, tick)?;
            applied += 1;
        }
        engine.gc(tick);
        let changed = engine.take_result_changes().map_or(0, |c| c.len());
        println!(
            "t={tick:>4}: {:>2} pairs ({applied} fixes applied, {changed} pairs changed)",
            engine.result_at(tick).len()
        );
        tick += 1.0;
    }

    // Show one concrete encounter: the first active pair's exact window.
    if let Some(&pair) = engine.result_at(last_tick).first() {
        let status = engine.pair_status_at(pair, last_tick);
        if let Some(iv) = status.active {
            println!(
                "e.g. A:{} and B:{} are within {EPSILON} m over [{:.2}, {:.2}]",
                pair.0, pair.1, iv.start, iv.end
            );
        }
    }

    // Candidate/refine economics, via the same registry the benchmarks
    // scrape: inflation proposes candidates, exact refine disposes.
    engine.publish_metrics();
    let snap = engine.metrics_registry().snapshot();
    let candidates = snap.counter("simjoin.candidates").unwrap_or(0);
    let rejects = snap.counter("simjoin.refine_rejects").unwrap_or(0);
    println!(
        "refine economics: {candidates} candidates, {rejects} rejected \
         ({:.1}% accepted)",
        if candidates > 0 {
            100.0 * (candidates - rejects) as f64 / candidates as f64
        } else {
            0.0
        }
    );
    Ok(())
}
