//! The paper's second motivating scenario (Fig. 1b): warships versus a
//! bomber squadron. Each bomber's attack range is a region in front of
//! it (we index its MBR, the paper's filter step); the fleet must be
//! alerted the moment any ship's body intersects any attack range.
//!
//! Uses the battlefield distribution of §VI-A — the two sets start on
//! opposite sides and close on each other — and compares what the
//! continuous join reports against the alert counts over time.
//!
//! ```text
//! cargo run --release --example battlefield
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::tpr::ObjectId;
use cij::workload::{generate_pair, Distribution, Params, UpdateStream};

fn main() {
    // Warships (A) and bombers (B): 800 each, closing head-on.
    let params = Params {
        dataset_size: 800,
        distribution: Distribution::Battlefield,
        object_size_pct: 0.4, // attack ranges are larger than point ships
        max_speed: 5.0,
        ..Params::default()
    };
    let (ships, bombers) = generate_pair(&params, 0.0);

    let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
    let mut engine = MtbEngine::new(pool, EngineConfig::default(), &ships, &bombers, 0.0)
        .expect("engine construction");
    engine.run_initial_join(0.0).expect("initial join");

    let mut stream = UpdateStream::new(&params, &ships, &bombers, 0.0);
    let mut ever_alerted: HashSet<ObjectId> = HashSet::new();
    let mut first_contact: Option<f64> = None;

    println!(
        "fleet of {} ships vs {} bombers, closing at up to {} units/tick",
        ships.len(),
        bombers.len(),
        params.max_speed
    );
    for tick in 0..=120u32 {
        let now = f64::from(tick);
        if tick > 0 {
            for update in stream.tick(now) {
                engine.apply_update(&update, now).expect("update");
            }
        }
        let pairs = engine.result_at(now);
        let alerted: HashSet<ObjectId> = pairs.iter().map(|(ship, _)| *ship).collect();
        if !alerted.is_empty() && first_contact.is_none() {
            first_contact = Some(now);
            println!(">>> first contact at t={now}");
        }
        ever_alerted.extend(alerted.iter().copied());
        if tick % 10 == 0 {
            println!(
                "t={now:>3}: {:>4} ships in danger ({:>4} threat pairs, {:>4} ships ever alerted)",
                alerted.len(),
                pairs.len(),
                ever_alerted.len()
            );
        }
    }

    match first_contact {
        Some(t) => println!(
            "engagement began at t={t}; {} of {} ships saw action",
            ever_alerted.len(),
            ships.len()
        ),
        None => println!("the fleets never met (increase speed or simulation length)"),
    }
}
