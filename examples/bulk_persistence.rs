//! Production-flavored workflow: bulk-load a large index straight onto a
//! real disk file, then serve time-constrained joins from it.
//!
//! Demonstrates two library features beyond the paper's minimum:
//! * STR bulk loading adapted to moving objects (`TprTree::bulk_load`) —
//!   orders of magnitude fewer page writes than insertion building;
//! * the `FileStore` page store — the "disk-resident" assumption of the
//!   paper taken literally, behind the same 50-page LRU pool.
//!
//! ```text
//! cargo run --release --example bulk_persistence
//! ```

use std::sync::Arc;
use std::time::Instant;

use cij::join::{improved_join, techniques};
use cij::storage::{BufferPool, BufferPoolConfig, FileStore, PageStore};
use cij::tpr::{TprTree, TreeConfig};
use cij::workload::{generate_pair, Params};

fn main() {
    let params = Params {
        dataset_size: 20_000,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let to_pairs =
        |set: &[cij::workload::MovingObject]| set.iter().map(|o| (o.id, o.mbr)).collect::<Vec<_>>();

    let mut path = std::env::temp_dir();
    path.push(format!("cij-bulk-demo-{}.pages", std::process::id()));
    let store: Arc<dyn PageStore> = Arc::new(FileStore::create(&path).expect("create page file"));
    let pool = BufferPool::new(Arc::clone(&store), BufferPoolConfig::default());

    let config = TreeConfig {
        capacity: params.node_capacity,
        ..TreeConfig::default()
    };

    // Bulk-load both sets onto disk.
    let t0 = Instant::now();
    let tree_a = TprTree::bulk_load(pool.clone(), config, &to_pairs(&a), 0.0).expect("bulk load A");
    let tree_b = TprTree::bulk_load(pool.clone(), config, &to_pairs(&b), 0.0).expect("bulk load B");
    pool.flush().expect("flush");
    let build = t0.elapsed();
    println!(
        "bulk-loaded 2 × {} objects to {} in {:.0} ms ({} pages on disk, heights {}/{})",
        params.dataset_size,
        path.display(),
        build.as_secs_f64() * 1e3,
        store.live_pages(),
        tree_a.height(),
        tree_b.height(),
    );

    // Serve a TC join from the on-disk index, cold cache.
    pool.clear().expect("cold cache");
    let stats = pool.stats();
    let before = stats.snapshot();
    let t0 = Instant::now();
    let (pairs, counters) = improved_join(
        &tree_a,
        &tree_b,
        0.0,
        params.maximum_update_interval,
        techniques::ALL,
    )
    .expect("join");
    let elapsed = t0.elapsed();
    let delta = stats.snapshot() - before;
    println!(
        "TC join over [0, {}]: {} pairs in {:.0} ms — {} physical I/Os, {} node pairs, {} comparisons",
        params.maximum_update_interval,
        pairs.len(),
        elapsed.as_secs_f64() * 1e3,
        delta.physical_total(),
        counters.node_pairs,
        counters.entry_comparisons,
    );

    let _ = std::fs::remove_file(&path);
}
