//! Tour of the `cij-dist` coordinator/worker deployment: four WAL-backed
//! loopback workers under a velocity-band plan, a worker killed
//! mid-stream and restarted from its journal, a second worker losing its
//! WAL outright and being resynced from the coordinator's request
//! history — with the merged delta stream asserted bit-identical to the
//! in-process shard coordinator at every tick.
//!
//! Run with `cargo run --release --example dist_demo`.

use std::sync::Arc;

use cij::core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij::dist::loopback::LoopbackHost;
use cij::dist::{joinable_pairs, Connector, DistConfig, DistCoordinator, EngineKind};
use cij::shard::{PartitionPolicy, ShardCoordinator, VelocityBandPolicy};
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::tpr::TprResult;
use cij::workload::{generate_pair, Distribution, Params, UpdateStream};

fn main() -> TprResult<()> {
    // The skewed-velocity workload the band policy is built for.
    let params = Params {
        dataset_size: 300,
        distribution: Distribution::VelocitySkew,
        maximum_update_interval: 20.0,
        space: 400.0,
        object_size_pct: 1.0,
        ..Params::default()
    };
    let (set_a, set_b) = generate_pair(&params, 0.0);
    let engine_cfg = EngineConfig {
        t_m: params.maximum_update_interval,
        ..EngineConfig::default()
    };

    // K = 2 velocity bands → a 2×2 join plan → four workers, each a
    // simulated machine with its own write-ahead log.
    let policy: Arc<dyn PartitionPolicy> = Arc::new(VelocityBandPolicy::new(2, params.max_speed));
    let plan = joinable_pairs(&*policy);
    let wal_dir = std::env::temp_dir();
    let wal_paths: Vec<_> = (0..plan.len())
        .map(|i| wal_dir.join(format!("cij-dist-demo-{i}-{}.wal", std::process::id())))
        .collect();
    for p in &wal_paths {
        let _ = std::fs::remove_file(p);
    }
    let hosts: Vec<Arc<LoopbackHost>> = wal_paths
        .iter()
        .map(|p| LoopbackHost::durable(p.clone()).expect("open worker WAL"))
        .collect();
    let connectors: Vec<Box<dyn Connector>> = hosts
        .iter()
        .map(|h| Box::new(h.connector()) as Box<dyn Connector>)
        .collect();

    let mut dist = DistCoordinator::new(
        DistConfig {
            engine: EngineKind::Mtb,
            t_m: engine_cfg.t_m,
            buckets_per_tm: engine_cfg.buckets_per_tm,
            metrics: true,
            ..DistConfig::default()
        },
        policy.clone(),
        connectors,
        &set_a,
        &set_b,
        0.0,
    )
    .map_err(cij::tpr::TprError::from)?;
    println!(
        "{} over {} velocity bands: {} workers serving shard pairs {:?}",
        dist.name(),
        dist.shard_count(),
        dist.worker_count(),
        dist.worker_pairs(),
    );

    // The in-process coordinator is the oracle: same policy, same
    // engines, no transport. The demo asserts the distributed run never
    // deviates from it.
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(4096),
    );
    let mut oracle = ShardCoordinator::new(
        pool,
        engine_cfg,
        policy,
        &set_a,
        &set_b,
        0.0,
        &|pool, cfg, a, b, now| Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, now)?)),
    )?;

    dist.enable_delta_tracking();
    oracle.enable_delta_tracking();
    dist.run_initial_join(0.0)?;
    oracle.run_initial_join(0.0)?;

    let mut stream = UpdateStream::new(&params, &set_a, &set_b, 0.0);
    let tick = |dist: &mut DistCoordinator,
                oracle: &mut ShardCoordinator,
                stream: &mut UpdateStream,
                now: f64|
     -> TprResult<usize> {
        let updates = stream.tick(now);
        for c in [dist as &mut dyn ContinuousJoinEngine, oracle] {
            c.advance_time(now)?;
            c.apply_batch(&updates, now)?;
            c.gc(now);
        }
        let d = dist.take_result_changes().unwrap_or_default();
        let o = oracle.take_result_changes().unwrap_or_default();
        assert_eq!(d, o, "distributed deltas diverged at t={now}");
        assert_eq!(dist.result_at(now), oracle.result_at(now), "t={now}");
        Ok(d.len())
    };

    let mut deltas = 0usize;
    for t in 1..=6u32 {
        deltas += tick(&mut dist, &mut oracle, &mut stream, f64::from(t))?;
    }
    println!("t=1..6   healthy: {deltas} merged deltas, all bit-identical to in-process");

    // ---- Fault 1: crash a worker process; its WAL survives. --------
    hosts[1].kill();
    println!("t=7      KILL worker 1 (engine, outbox and sequence state gone; WAL intact)");
    let mut deltas = 0usize;
    for t in 7..=12u32 {
        deltas += tick(&mut dist, &mut oracle, &mut stream, f64::from(t))?;
    }
    println!(
        "t=7..12  recovered: {deltas} merged deltas, still bit-identical \
         (worker 1 restarts={}, journal replayed on open)",
        hosts[1].restarts()
    );

    // ---- Fault 2: lose a whole machine, WAL included. --------------
    hosts[2].kill_and_lose_wal();
    println!("t=13     KILL worker 2 *and* its WAL (total machine loss)");
    let mut deltas = 0usize;
    for t in 13..=18u32 {
        deltas += tick(&mut dist, &mut oracle, &mut stream, f64::from(t))?;
    }
    println!(
        "t=13..18 resynced: {deltas} merged deltas, still bit-identical \
         (coordinator replayed its retained history into the blank worker)"
    );

    dist.heartbeat().map_err(cij::tpr::TprError::from)?;
    println!("heartbeat: all {} workers answering", dist.worker_count());

    dist.publish_metrics();
    let snap = dist.metrics_registry().snapshot();
    let counter = |n: &str| snap.counter(n).unwrap_or(0);
    println!(
        "metrics: rpc_calls={} rpc_errors={} reconnects={} resyncs={} replayed_requests={}",
        counter("dist.rpc.calls"),
        counter("dist.rpc.errors"),
        counter("dist.reconnects"),
        counter("dist.resyncs"),
        counter("dist.replayed_requests"),
    );

    dist.shutdown_workers();
    for p in &wal_paths {
        let _ = std::fs::remove_file(p);
    }
    Ok(())
}
