//! §V of the paper: TC processing applied to **continuous window
//! queries**. A set of monitoring regions (static windows plus one
//! moving patrol window) watches a set of moving objects; each query's
//! membership is maintained with time-constrained probes instead of
//! infinite-horizon predictions.
//!
//! ```text
//! cargo run --release --example window_monitor
//! ```

use std::sync::Arc;

use cij::core::window::{ContinuousWindowQueries, QueryId};
use cij::geom::{MovingRect, Rect};
use cij::storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij::tpr::{TprTree, TreeConfig};
use cij::workload::{generate_set, Params, SetTag, UpdateStream};

fn main() {
    let params = Params {
        dataset_size: 3000,
        ..Params::default()
    };
    let objects = generate_set(&params, SetTag::A, 0, 0.0);

    // Index the objects in a TPR-tree (used for the initial evaluation).
    let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
    let mut tree = TprTree::new(
        pool.clone(),
        TreeConfig {
            capacity: params.node_capacity,
            ..TreeConfig::default()
        },
    );
    for o in &objects {
        tree.insert(o.id, o.mbr, 0.0).expect("insert");
    }

    // Three fixed monitoring regions + one moving patrol window.
    let mut monitor = ContinuousWindowQueries::new(params.maximum_update_interval);
    monitor.add_query(QueryId(0), Rect::new([100.0, 100.0], [250.0, 250.0]));
    monitor.add_query(QueryId(1), Rect::new([400.0, 400.0], [600.0, 600.0]));
    monitor.add_query(QueryId(2), Rect::new([800.0, 50.0], [950.0, 200.0]));
    monitor.add_moving_query(
        QueryId(3),
        MovingRect::rigid(Rect::new([0.0, 450.0], [100.0, 550.0]), [8.0, 0.0], 0.0),
    );
    monitor
        .initial_evaluate(&tree, 0.0)
        .expect("initial evaluation");

    let names = ["downtown", "midtown", "harbor", "patrol"];
    let mut stream = UpdateStream::new(&params, &objects, &[], 0.0);

    for tick in 0..=60u32 {
        let now = f64::from(tick);
        if tick > 0 {
            for update in stream.tick(now) {
                // TC maintenance: one bounded probe per update.
                monitor.apply_update(update.id, &update.new_mbr, now);
            }
        }
        if tick % 10 == 0 {
            let counts: Vec<String> = (0..4)
                .map(|q| {
                    format!(
                        "{}={}",
                        names[q as usize],
                        monitor.result_at(QueryId(q), now).len()
                    )
                })
                .collect();
            println!("t={now:>3}: {}", counts.join("  "));
        }
    }

    // The moving patrol window sweeps left→right; show its catch now.
    let caught = monitor.result_at(QueryId(3), 60.0);
    println!("patrol window tracks {} objects at t=60", caught.len());
}
